#include "dist/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "common/metrics_sampler.h"
#include "common/obs.h"
#include "common/trace.h"
#include "core/codec_factory.h"
#include "dist/stats.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

// ---------------------------------------------------------------------------
// Series parsing on hand-built text.

const char kHeader[] =
    R"({"type":"run","schema":1,"git_sha":"cafe01","start_unix_ms":7,)"
    R"("meta":{"codec":"sketchml","workers":"2","seed":"1"}})";

std::string SampleLine(double t_ns, const std::string& reason,
                       const std::string& counters,
                       const std::string& gauges) {
  std::ostringstream out;
  out << R"({"type":"sample","t_ns":)" << t_ns << R"(,"reason":")" << reason
      << R"(","dropped_trace_events":0,"counters":{)" << counters
      << R"(},"gauges":{)" << gauges << R"(},"histograms":{}})";
  return out.str();
}

TEST(RunSeriesTest, ParsesHeaderAndSamples) {
  std::string text = std::string(kHeader) + "\n" +
                     SampleLine(1e9, "epoch",
                                R"("trainer/compute_seconds":1.5,)"
                                R"("trainer/worker_seconds{worker=0,phase=compute}":0.75,)"
                                R"("trainer/worker_seconds{worker=1,phase=compute}":0.75)",
                                R"("trainer/train_loss":0.5)") +
                     "\n" +
                     SampleLine(2e9, "epoch",
                                R"("trainer/compute_seconds":3.0)",
                                R"("trainer/train_loss":0.25)") +
                     "\n" +
                     SampleLine(2.5e9, "final",
                                R"("trainer/compute_seconds":3.0)", "") +
                     "\n";
  auto parsed = ParseRunSeries(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const RunSeries& series = *parsed;
  EXPECT_EQ(series.git_sha, "cafe01");
  EXPECT_EQ(series.MetaOr("codec", ""), "sketchml");
  EXPECT_EQ(series.MetaOr("missing", "dflt"), "dflt");
  ASSERT_EQ(series.samples.size(), 3u);
  EXPECT_EQ(series.EpochSamples().size(), 2u);
  ASSERT_NE(series.Final(), nullptr);
  EXPECT_EQ(series.Final()->reason, "final");
  const SeriesSample& first = series.samples[0];
  EXPECT_DOUBLE_EQ(first.CounterOr("trainer/compute_seconds", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(first.GaugeOr("trainer/train_loss", 0.0), 0.5);
  // Labeled roll-up matches the registry convention.
  EXPECT_DOUBLE_EQ(
      first.SumCounters("trainer/worker_seconds", {{"phase", "compute"}}),
      1.5);
  EXPECT_DOUBLE_EQ(
      first.SumCounters("trainer/worker_seconds", {{"worker", "1"}}), 0.75);
}

TEST(RunSeriesTest, RejectsMissingHeaderAndBadLines) {
  EXPECT_FALSE(ParseRunSeries("").ok());
  // A sample with no preceding run header is rejected.
  EXPECT_FALSE(ParseRunSeries(SampleLine(1, "epoch", "", "")).ok());
  // Malformed JSON mid-file is a parse error, not silently skipped.
  auto bad = ParseRunSeries(std::string(kHeader) + "\n{not json\n");
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------------
// End-to-end: trainer -> sampler -> LoadRunSeries -> BuildRunReport.

struct TrainedRun {
  RunSeries series;
  EpochStats totals;  // Sum of the trainer's own per-epoch stats.
};

void RunTrainerWithSampler(const std::string& path, int epochs,
                           TrainedRun* out) {
  ml::SyntheticConfig data_config;
  data_config.num_instances = 1200;
  data_config.dim = 1 << 12;
  data_config.avg_nnz = 20;
  data_config.seed = 5;
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");
  ClusterConfig cluster;
  cluster.num_workers = 2;
  TrainerConfig config;
  config.num_threads = 2;
  // Metrics on before construction: per-entity handles resolve in the
  // trainer constructor.
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  DistributedTrainer trainer(&train, &test, loss.get(),
                             std::move(core::MakeCodec("sketchml")).value(),
                             cluster, config);

  obs::MetricsSampler::Options options;
  options.out_path = path;
  options.interval_seconds = 0.0;  // Epoch-boundary samples only.
  options.metadata.Add("codec", "sketchml");
  options.metadata.Add("workers", static_cast<long long>(2));
  auto started = obs::MetricsSampler::Start(std::move(options));
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto sampler = std::move(*started);

  for (int e = 0; e < epochs; ++e) {
    auto result = trainer.RunEpoch();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    out->totals.compute_seconds += result->compute_seconds;
    out->totals.encode_seconds += result->encode_seconds;
    out->totals.decode_seconds += result->decode_seconds;
    out->totals.update_seconds += result->update_seconds;
    out->totals.network_seconds += result->network_seconds;
    sampler->SampleNow("epoch");
  }
  ASSERT_TRUE(sampler->Stop().ok());
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(was_enabled);

  auto loaded = LoadRunSeries(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  out->series = std::move(*loaded);
}

TEST(RunReportTest, TrainerSeriesReconcilesWithEpochStats) {
  const std::string path = ::testing::TempDir() + "/report_e2e.series.jsonl";
  TrainedRun run;
  RunTrainerWithSampler(path, /*epochs=*/2, &run);
  std::remove(path.c_str());
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(run.series.MetaOr("codec", ""), "sketchml");
  ASSERT_EQ(run.series.EpochSamples().size(), 2u);
  const RunReport report = BuildRunReport(run.series);

  // Aggregate phase totals equal the sum of the trainer's own EpochStats.
  const auto near = [](double value, double want) {
    EXPECT_NEAR(value, want, 1e-9 * std::max(1.0, std::abs(want)));
  };
  near(report.compute_seconds, run.totals.compute_seconds);
  near(report.encode_seconds, run.totals.encode_seconds);
  near(report.decode_seconds, run.totals.decode_seconds);
  near(report.update_seconds, run.totals.update_seconds);
  near(report.network_seconds, run.totals.network_seconds);

  // Per-worker rows sum back to the aggregates (the Fig-9 breakdown is a
  // partition, not an estimate).
  ASSERT_EQ(report.workers.size(), 2u);
  double worker_compute = 0.0;
  double worker_encode = 0.0;
  for (const WorkerPhaseRow& row : report.workers) {
    worker_compute += row.compute_seconds;
    worker_encode += row.encode_seconds;
    EXPECT_GT(row.RecoveryErrorRel(), 0.0);   // SketchML is lossy.
    EXPECT_LT(row.RecoveryErrorRel(), 1.0);   // ...but bounded.
  }
  near(worker_compute, report.compute_seconds);
  double driver_encode = 0.0;
  if (const SeriesSample* fin = run.series.Final()) {
    driver_encode =
        fin->SumCounters("trainer/driver_seconds", {{"phase", "encode"}});
  }
  near(worker_encode + driver_encode, report.encode_seconds);

  ASSERT_GE(report.servers.size(), 1u);
  EXPECT_GT(report.servers[0].gather_bytes, 0.0);

  // Codec table: sketchml compresses (>1 ratio) and recorded latency.
  ASSERT_GE(report.codecs.size(), 1u);
  const CodecRow* sketchml_row = nullptr;
  for (const CodecRow& row : report.codecs) {
    if (row.codec == "sketchml") sketchml_row = &row;
  }
  ASSERT_NE(sketchml_row, nullptr);
  EXPECT_GT(sketchml_row->encode_calls, 0.0);
  EXPECT_GT(sketchml_row->CompressionRatio(), 1.0);
  EXPECT_GT(sketchml_row->mean_encode_ns, 0.0);
  EXPECT_GE(sketchml_row->p99_encode_ns, sketchml_row->mean_encode_ns);

  // Epoch rows: one per boundary sample, phases partition the epoch and
  // straggler bookkeeping is populated.
  ASSERT_EQ(report.epochs.size(), 2u);
  double epoch_compute = 0.0;
  for (const EpochRow& row : report.epochs) {
    epoch_compute += row.compute_seconds;
    EXPECT_GE(row.straggler_worker, 0);
    EXPECT_LT(row.straggler_worker, 2);
    EXPECT_GE(row.Imbalance(), 1.0);
    EXPECT_GT(row.train_loss, 0.0);
  }
  near(epoch_compute, report.compute_seconds);

  // Rendering mentions every section (cheap smoke check for the CLI).
  const std::string text = RenderRunReport(report);
  EXPECT_NE(text.find("worker"), std::string::npos);
  EXPECT_NE(text.find("sketchml"), std::string::npos);
  EXPECT_NE(text.find("epoch"), std::string::npos);
  // A fault-free run reports no fault section at all.
  EXPECT_FALSE(report.faults.Any());
  EXPECT_EQ(text.find("fault tolerance"), std::string::npos);
}

TEST(RunReportTest, FaultCountersRollUpIntoFaultSummary) {
  const std::string text =
      std::string(kHeader) + "\n" +
      SampleLine(1e9, "final",
                 R"("fault/injected{kind=drop,worker=0}":3,)"
                 R"("fault/injected{kind=drop,worker=1}":2,)"
                 R"("fault/injected{kind=corrupt,worker=0}":4,)"
                 R"("fault/injected{kind=stall,server=0}":1,)"
                 R"("net/retries{worker=0}":6,)"
                 R"("net/retries{worker=1}":1,)"
                 R"("net/retransmit_bytes{worker=0}":5000,)"
                 R"("net/lost_messages":2,)"
                 R"("trainer/degraded_batches":2)",
                 "") +
      "\n";
  auto parsed = ParseRunSeries(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const RunReport report = BuildRunReport(*parsed);
  EXPECT_DOUBLE_EQ(report.faults.injected_drop, 5.0);
  EXPECT_DOUBLE_EQ(report.faults.injected_corrupt, 4.0);
  EXPECT_DOUBLE_EQ(report.faults.injected_stall, 1.0);
  EXPECT_DOUBLE_EQ(report.faults.InjectedTotal(), 10.0);
  EXPECT_DOUBLE_EQ(report.faults.retries, 7.0);
  EXPECT_DOUBLE_EQ(report.faults.retransmit_bytes, 5000.0);
  EXPECT_DOUBLE_EQ(report.faults.lost_messages, 2.0);
  EXPECT_DOUBLE_EQ(report.faults.degraded_batches, 2.0);
  EXPECT_TRUE(report.faults.Any());
  const std::string rendered = RenderRunReport(report);
  EXPECT_NE(rendered.find("fault tolerance"), std::string::npos);
  EXPECT_NE(rendered.find("7 retries"), std::string::npos);
  EXPECT_NE(rendered.find("2 batches applied degraded"), std::string::npos);
}

TEST(RunReportTest, MembershipCountersRollUpIntoMembershipSummary) {
  const std::string text =
      std::string(kHeader) + "\n" +
      SampleLine(1e9, "final",
                 R"("membership/events{kind=join}":3,)"
                 R"("membership/events{kind=leave}":2,)"
                 R"("membership/events{kind=depart}":1,)"
                 R"("membership/handoff_bytes":4096,)"
                 R"("membership/sync_bytes":65536,)"
                 R"("membership/reconfigurations":2,)"
                 R"("membership/rollbacks":1,)"
                 R"("membership/checkpoint_bytes":12345)",
                 "") +
      "\n";
  auto parsed = ParseRunSeries(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const RunReport report = BuildRunReport(*parsed);
  EXPECT_DOUBLE_EQ(report.membership.joins, 3.0);
  EXPECT_DOUBLE_EQ(report.membership.leaves, 2.0);
  EXPECT_DOUBLE_EQ(report.membership.departs, 1.0);
  EXPECT_DOUBLE_EQ(report.membership.EventTotal(), 6.0);
  EXPECT_DOUBLE_EQ(report.membership.handoff_bytes, 4096.0);
  EXPECT_DOUBLE_EQ(report.membership.sync_bytes, 65536.0);
  EXPECT_DOUBLE_EQ(report.membership.reconfigurations, 2.0);
  EXPECT_DOUBLE_EQ(report.membership.rollbacks, 1.0);
  EXPECT_DOUBLE_EQ(report.membership.checkpoint_bytes, 12345.0);
  EXPECT_TRUE(report.membership.Any());
  const std::string rendered = RenderRunReport(report);
  EXPECT_NE(rendered.find("elastic membership"), std::string::npos);
  EXPECT_NE(rendered.find("2 shard reconfigurations"), std::string::npos);
  EXPECT_NE(rendered.find("1 rollbacks"), std::string::npos);

  // A churn-free series reports no membership section at all.
  auto plain = ParseRunSeries(std::string(kHeader) + "\n" +
                              SampleLine(1e9, "final",
                                         R"("trainer/compute_seconds":1.0)",
                                         "") +
                              "\n");
  ASSERT_TRUE(plain.ok());
  const RunReport quiet = BuildRunReport(*plain);
  EXPECT_FALSE(quiet.membership.Any());
  EXPECT_EQ(RenderRunReport(quiet).find("elastic membership"),
            std::string::npos);
}

TEST(RunReportTest, EpochMeanAveragesOnlyWorkersActiveThatEpoch) {
  // Worker 2 joins in epoch 2: the run's lifetime label set is {0,1,2},
  // but epoch 1's mean must average over the two workers that actually
  // ran — dividing by three would fake straggler imbalance.
  const std::string text =
      std::string(kHeader) + "\n" +
      SampleLine(1e9, "epoch",
                 R"("trainer/worker_seconds{worker=0,phase=compute}":1.0,)"
                 R"("trainer/worker_seconds{worker=1,phase=compute}":1.0)",
                 "") +
      "\n" +
      SampleLine(2e9, "epoch",
                 R"("trainer/worker_seconds{worker=0,phase=compute}":2.0,)"
                 R"("trainer/worker_seconds{worker=1,phase=compute}":2.0,)"
                 R"("trainer/worker_seconds{worker=2,phase=compute}":0.5)",
                 "") +
      "\n";
  auto parsed = ParseRunSeries(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const RunReport report = BuildRunReport(*parsed);
  ASSERT_EQ(report.epochs.size(), 2u);
  // Epoch 1: two active workers at 1.0s each — mean 1.0, no imbalance.
  EXPECT_DOUBLE_EQ(report.epochs[0].mean_worker_seconds, 1.0);
  EXPECT_DOUBLE_EQ(report.epochs[0].straggler_seconds, 1.0);
  // Epoch 2: deltas 1.0, 1.0, 0.5 over three active workers.
  EXPECT_DOUBLE_EQ(report.epochs[1].mean_worker_seconds, 2.5 / 3.0);
  EXPECT_DOUBLE_EQ(report.epochs[1].straggler_seconds, 1.0);
}

// ---------------------------------------------------------------------------
// A/B diff: the regression gate.

std::string TwoRunSeries(double encode_seconds, double bytes_up,
                         double messages = 640.0) {
  std::ostringstream counters;
  counters << R"("trainer/compute_seconds":2.0,)"
           << R"("trainer/encode_seconds":)" << encode_seconds << ','
           << R"("trainer/bytes_up":)" << bytes_up << ','
           << R"("trainer/messages":)" << messages;
  return std::string(kHeader) + "\n" +
         SampleLine(1e9, "final", counters.str(),
                    R"("trainer/train_loss":0.5)") +
         "\n";
}

TEST(DiffRunsTest, FlagsInjectedEncodeLatencyRegression) {
  auto baseline = ParseRunSeries(TwoRunSeries(1.0, 1000.0));
  auto candidate = ParseRunSeries(TwoRunSeries(2.0, 1000.0));  // 2x encode.
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());

  DiffOptions options;
  options.threshold = 0.25;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  EXPECT_GE(diff.metrics_compared, 3u);
  ASSERT_FALSE(diff.flagged.empty());
  EXPECT_TRUE(diff.HasRegression());
  const MetricDelta* encode_delta = nullptr;
  for (const MetricDelta& delta : diff.flagged) {
    if (delta.name == "trainer/encode_seconds") encode_delta = &delta;
  }
  ASSERT_NE(encode_delta, nullptr);
  EXPECT_TRUE(encode_delta->timing);
  EXPECT_TRUE(encode_delta->regression);
  EXPECT_DOUBLE_EQ(encode_delta->RelChange(), 1.0);

  const std::string rendered = RenderDiff(diff, options);
  EXPECT_NE(rendered.find("trainer/encode_seconds"), std::string::npos);
}

TEST(DiffRunsTest, IgnoreTimesSkipsWallClockMetrics) {
  auto baseline = ParseRunSeries(TwoRunSeries(1.0, 1000.0));
  auto candidate = ParseRunSeries(TwoRunSeries(2.0, 1000.0));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  EXPECT_TRUE(diff.flagged.empty());
  EXPECT_FALSE(diff.HasRegression());
}

TEST(DiffRunsTest, DeterministicCountDriftIsAlwaysARegression) {
  // trainer/messages is a neutral count: exactly reproducible for a fixed
  // seed, so drift in *either* direction is a regression — even a drop,
  // and even under --ignore-times.
  auto baseline = ParseRunSeries(TwoRunSeries(1.0, 1000.0, 640.0));
  auto candidate = ParseRunSeries(TwoRunSeries(1.0, 1000.0, 320.0));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  ASSERT_EQ(diff.flagged.size(), 1u);
  EXPECT_EQ(diff.flagged[0].name, "trainer/messages");
  EXPECT_TRUE(diff.HasRegression());
}

TEST(DiffRunsTest, FewerBytesIsAChangeButNotARegression) {
  // bytes_up is higher-is-worse: sending *less* is flagged (it changed
  // beyond the threshold) but does not fail the gate.
  auto baseline = ParseRunSeries(TwoRunSeries(1.0, 4000.0));
  auto candidate = ParseRunSeries(TwoRunSeries(1.0, 1000.0));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  ASSERT_EQ(diff.flagged.size(), 1u);
  EXPECT_EQ(diff.flagged[0].name, "trainer/bytes_up");
  EXPECT_FALSE(diff.flagged[0].regression);
  EXPECT_FALSE(diff.HasRegression());
}

TEST(DiffRunsTest, IdenticalRunsPassClean) {
  auto baseline = ParseRunSeries(TwoRunSeries(1.0, 1000.0));
  auto candidate = ParseRunSeries(TwoRunSeries(1.0, 1000.0));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  const DiffResult diff = DiffRuns(*baseline, *candidate, DiffOptions{});
  EXPECT_TRUE(diff.flagged.empty());
  EXPECT_FALSE(diff.HasRegression());
}

TEST(DiffRunsTest, MembershipEventDriftIsARegression) {
  // Membership events are seeded deterministic counts (satellite: the
  // A/B diff must treat them like messages, not like timings): drift in
  // either direction fails the gate, even under --ignore-times.
  const auto series = [](double joins, double handoff_bytes) {
    std::ostringstream counters;
    counters << R"("trainer/messages":640,)"
             << R"("membership/events{kind=join}":)" << joins << ','
             << R"("membership/handoff_bytes":)" << handoff_bytes;
    return std::string(kHeader) + "\n" +
           SampleLine(1e9, "final", counters.str(), "") + "\n";
  };
  auto baseline = ParseRunSeries(series(4.0, 4096.0));
  auto fewer_joins = ParseRunSeries(series(2.0, 4096.0));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(fewer_joins.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *fewer_joins, options);
  ASSERT_EQ(diff.flagged.size(), 1u);
  EXPECT_EQ(diff.flagged[0].name, "membership/events{kind=join}");
  EXPECT_TRUE(diff.flagged[0].regression);  // Drift DOWN still fails.
  EXPECT_TRUE(diff.HasRegression());

  // Handoff bytes are higher-is-worse traffic: shrinking them is a
  // flagged change but not a gate failure.
  auto cheaper = ParseRunSeries(series(4.0, 1024.0));
  ASSERT_TRUE(cheaper.ok());
  const DiffResult bytes_diff = DiffRuns(*baseline, *cheaper, options);
  ASSERT_EQ(bytes_diff.flagged.size(), 1u);
  EXPECT_EQ(bytes_diff.flagged[0].name, "membership/handoff_bytes");
  EXPECT_FALSE(bytes_diff.flagged[0].regression);
  EXPECT_FALSE(bytes_diff.HasRegression());
}

// ---------------------------------------------------------------------------
// SLO gate: sketch-quantile diffs with sketch-error-aware thresholds.

/// One sketch entry for a hand-built sample's "sketches" object.
std::string SketchEntry(const std::string& name, double count, double p99,
                        double p99_lo, double p99_hi, double wp99 = 0.02) {
  std::ostringstream out;
  out << '"' << name << R"(":{"count":)" << count
      << R"(,"min":0.001,"max":0.1,"eps":0.0156,)"
      << R"("p50":0.01,"p50_lo":0.009,"p50_hi":0.011,)"
      << R"("p90":0.015,"p90_lo":0.014,"p90_hi":0.016,)"
      << R"("p99":)" << p99 << R"(,"p99_lo":)" << p99_lo << R"(,"p99_hi":)"
      << p99_hi << ','
      << R"("p999":0.05,"p999_lo":0.049,"p999_hi":0.051,)"
      << R"("wp50":0.01,"wp50_lo":0.009,"wp50_hi":0.011,)"
      << R"("wp99":)" << wp99 << R"(,"wp99_lo":)" << wp99 * 0.9
      << R"(,"wp99_hi":)" << wp99 * 1.1
      << R"(,"window_count":)" << count << R"(,"windows":2})";
  return out.str();
}

std::string SloSeries(const std::string& sketches,
                      const std::string& counters = "",
                      const std::string& reason = "final") {
  std::ostringstream out;
  out << kHeader << "\n"
      << R"({"type":"sample","t_ns":1e9,"reason":")" << reason
      << R"(","dropped_trace_events":0,"counters":{)" << counters
      << R"(},"gauges":{},"histograms":{},"sketches":{)" << sketches
      << "}}\n";
  return out.str();
}

TEST(SloGateTest, FlagsQuantileDriftBeyondCombinedErrorBound) {
  // "modeled" sketches are deterministic modeled seconds: compared even
  // under --ignore-times. Candidate's p99 at q-2ε (0.038) clears the
  // baseline's at q+2ε (0.032) — a drift no sketch error can explain.
  auto baseline = ParseRunSeries(SloSeries(
      SketchEntry("trainer/push_modeled_seconds", 640, 0.030, 0.028,
                  0.032)));
  auto candidate = ParseRunSeries(SloSeries(
      SketchEntry("trainer/push_modeled_seconds", 640, 0.040, 0.038,
                  0.042)));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  ASSERT_EQ(diff.slo.size(), 1u);
  EXPECT_EQ(diff.slo[0].name, "trainer/push_modeled_seconds");
  EXPECT_EQ(diff.slo[0].quantile, "p99");
  EXPECT_TRUE(diff.slo[0].regression);
  EXPECT_TRUE(diff.HasRegression());
  const std::string rendered = RenderDiff(diff, options);
  EXPECT_NE(rendered.find("SLO REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("trainer/push_modeled_seconds"),
            std::string::npos);
}

TEST(SloGateTest, ToleratesDriftWithinErrorBound) {
  // Candidate p99 moved up, but its q-2ε value (0.031) still overlaps the
  // baseline's q+2ε (0.032): within what two ±ε sketches can disagree by,
  // so the gate must not fire on its own estimation noise.
  auto baseline = ParseRunSeries(SloSeries(
      SketchEntry("trainer/push_modeled_seconds", 640, 0.030, 0.028,
                  0.032)));
  auto candidate = ParseRunSeries(SloSeries(
      SketchEntry("trainer/push_modeled_seconds", 640, 0.033, 0.031,
                  0.035)));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  EXPECT_TRUE(diff.slo.empty());
  EXPECT_FALSE(diff.HasRegression());
  EXPECT_GE(diff.metrics_compared, 1u);
}

TEST(SloGateTest, IgnoreTimesSkipsMeasuredLatencySketches) {
  // Measured wall-clock sketches follow the same --ignore-times rule as
  // wall-clock counters: arbitrary drift must not be compared.
  auto baseline = ParseRunSeries(SloSeries(
      SketchEntry("trainer/compute_latency_seconds", 640, 0.01, 0.009,
                  0.011)));
  auto candidate = ParseRunSeries(SloSeries(
      SketchEntry("trainer/compute_latency_seconds", 640, 10.0, 9.0,
                  11.0)));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  EXPECT_TRUE(diff.slo.empty());
  EXPECT_FALSE(diff.HasRegression());

  // Without --ignore-times the same drift fires.
  options.ignore_times = false;
  const DiffResult live = DiffRuns(*baseline, *candidate, options);
  ASSERT_FALSE(live.slo.empty());
  EXPECT_TRUE(live.HasRegression());
}

TEST(SloGateTest, RecordCountDriftIsARegression) {
  // Record counts are fixed-seed deterministic; drift means the lane
  // cadence changed (or a sketch vanished) — flagged before quantiles.
  auto baseline = ParseRunSeries(SloSeries(
      SketchEntry("trainer/push_modeled_seconds", 640, 0.030, 0.028,
                  0.032)));
  auto candidate = ParseRunSeries(SloSeries(
      SketchEntry("trainer/push_modeled_seconds", 320, 0.030, 0.028,
                  0.032)));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(candidate.ok());
  DiffOptions options;
  options.ignore_times = true;
  const DiffResult diff = DiffRuns(*baseline, *candidate, options);
  ASSERT_EQ(diff.slo.size(), 1u);
  EXPECT_EQ(diff.slo[0].quantile, "count");
  EXPECT_TRUE(diff.slo[0].regression);
  EXPECT_TRUE(diff.HasRegression());
}

TEST(RunReportTest, P99StragglerColumnsFromWorkerSketches) {
  // Worker 1's windowed p99 dominates: it is the p99 straggler even
  // though the mean-based columns (equal worker_seconds) see no skew.
  const std::string counters =
      R"("trainer/compute_seconds":2.0,)"
      R"("trainer/worker_seconds{worker=0,phase=compute}":1.0,)"
      R"("trainer/worker_seconds{worker=1,phase=compute}":1.0)";
  const std::string sketches =
      SketchEntry("trainer/compute_latency_seconds{worker=0}", 320, 0.012,
                  0.011, 0.013, /*wp99=*/0.01) +
      "," +
      SketchEntry("trainer/compute_latency_seconds{worker=1}", 320, 0.05,
                  0.045, 0.055, /*wp99=*/0.05);
  auto series = ParseRunSeries(SloSeries(sketches, counters, "epoch"));
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  const RunReport report = BuildRunReport(*series);
  ASSERT_EQ(report.epochs.size(), 1u);
  const EpochRow& row = report.epochs[0];
  EXPECT_EQ(row.p99_straggler_worker, 1);
  EXPECT_DOUBLE_EQ(row.p99_straggler_seconds, 0.05);
  EXPECT_DOUBLE_EQ(row.mean_worker_p99, 0.03);
  EXPECT_NEAR(row.P99Imbalance(), 0.05 / 0.03, 1e-9);
  ASSERT_EQ(report.sketches.size(), 2u);  // Final sample's sketches.

  // Default rendering uses the p99 columns; --straggler-mean restores the
  // legacy mean-based ones.
  const std::string p99_render = RenderRunReport(report);
  EXPECT_NE(p99_render.find("p99-strag"), std::string::npos);
  EXPECT_NE(p99_render.find("w1"), std::string::npos);
  EXPECT_NE(p99_render.find("latency sketches"), std::string::npos);
  RenderOptions legacy;
  legacy.straggler_mean = true;
  const std::string mean_render = RenderRunReport(report, legacy);
  EXPECT_EQ(mean_render.find("p99-strag"), std::string::npos);
  EXPECT_NE(mean_render.find("straggler"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace summary.

TEST(TraceSummaryTest, SummarizesChromeTraceWithDroppedFooter) {
  const bool was_tracing = obs::TracingEnabled();
  obs::SetTracingEnabled(true);
  obs::TraceLog::Global().Reset();
  {
    obs::TraceSpan outer("trainer", "epoch");
    obs::TraceSpan inner("codec", "encode/sketchml");
  }
  { obs::TraceSpan again("codec", "encode/sketchml"); }
  std::ostringstream out;
  obs::TraceLog::Global().WriteChromeTrace(out);
  obs::TraceLog::Global().Reset();
  obs::SetTracingEnabled(was_tracing);

  auto summary = SummarizeTrace(out.str());
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_DOUBLE_EQ(summary->dropped_events, 0.0);
  const TraceSummary::Row* encode_row = nullptr;
  for (const auto& row : summary->rows) {
    if (row.name == "encode/sketchml") encode_row = &row;
  }
  ASSERT_NE(encode_row, nullptr);
  EXPECT_EQ(encode_row->category, "codec");
  EXPECT_EQ(encode_row->count, 2u);
  EXPECT_GT(encode_row->total_us, 0.0);
  EXPECT_GE(encode_row->max_us, encode_row->total_us / 2.0);
  EXPECT_NE(RenderTraceSummary(*summary).find("encode/sketchml"),
            std::string::npos);
}

TEST(TraceSummaryTest, RejectsNonTraceJson) {
  EXPECT_FALSE(SummarizeTrace("{}").ok());
  EXPECT_FALSE(SummarizeTrace("not json").ok());
}

}  // namespace
}  // namespace sketchml::dist
