#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/sparse.h"
#include "compress/one_bit_codec.h"
#include "compress/raw_codec.h"
#include "compress/zipml_codec.h"
#include "core/codec_factory.h"

namespace sketchml::compress {
namespace {

common::SparseGradient MakeGradient(size_t count, uint64_t dim,
                                    uint64_t seed) {
  common::Rng rng(seed);
  common::SparseGradient grad;
  uint64_t key = rng.NextBounded(dim / (count + 1) + 1);
  for (size_t i = 0; i < count; ++i) {
    const double v = rng.NextBernoulli(0.9) ? rng.NextGaussian() * 0.01
                                            : rng.NextGaussian() * 0.3;
    grad.push_back({key, v});
    key += 1 + rng.NextBounded(dim / count + 1);
  }
  return grad;
}

TEST(RawCodecTest, DoubleRoundTripsLosslessly) {
  RawCodec codec(ValueType::kDouble);
  const auto grad = MakeGradient(1000, 1 << 20, 139);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_EQ(decoded, grad);
  EXPECT_TRUE(codec.IsLossless());
  // 1 type byte + varint count + 12 bytes per pair.
  EXPECT_GE(msg.size(), grad.size() * 12);
}

TEST(RawCodecTest, FloatLosesOnlyFloatPrecision) {
  RawCodec codec(ValueType::kFloat);
  const auto grad = MakeGradient(500, 1 << 20, 149);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ(decoded[i].key, grad[i].key);
    EXPECT_EQ(decoded[i].value, static_cast<float>(grad[i].value));
  }
  EXPECT_FALSE(codec.IsLossless());
}

TEST(RawCodecTest, RejectsUnsortedInput) {
  RawCodec codec;
  EncodedGradient msg;
  common::SparseGradient bad = {{5, 1.0}, {3, 2.0}};
  EXPECT_EQ(codec.Encode(bad, &msg).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(RawCodecTest, EmptyGradient) {
  RawCodec codec;
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode({}, &msg).ok());
  common::SparseGradient decoded = {{1, 1.0}};
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(RawCodecTest, DecodeRejectsTruncation) {
  RawCodec codec;
  const auto grad = MakeGradient(100, 1 << 16, 151);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  msg.bytes.resize(msg.bytes.size() - 4);
  common::SparseGradient decoded;
  EXPECT_FALSE(codec.Decode(msg, &decoded).ok());
}

class ZipMlBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(ZipMlBitsTest, KeysExactValuesWithinOneStep) {
  const int bits = GetParam();
  ZipMlCodec codec(bits);
  const auto grad = MakeGradient(2000, 1 << 22, 157);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());

  double lo = grad[0].value, hi = grad[0].value;
  for (const auto& p : grad) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  const double step = (hi - lo) / ((1 << bits) - 1);
  for (size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ(decoded[i].key, grad[i].key);
    // Stochastic rounding lands on one of the two adjacent levels.
    EXPECT_LE(std::abs(decoded[i].value - grad[i].value), step + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ZipMlBitsTest, ::testing::Values(8, 16));

TEST(ZipMlCodecTest, StochasticRoundingIsUnbiased) {
  ZipMlCodec codec(8, /*seed=*/3);
  // A value strictly between grid levels, encoded many times.
  common::SparseGradient grad;
  for (uint64_t i = 0; i < 4096; ++i) grad.push_back({i, 0.101});
  grad.push_back({999999, -1.0});  // Pin the range to [-1, 1].
  grad.push_back({1000000, 1.0});
  double sum = 0.0;
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  for (size_t i = 0; i + 2 < decoded.size(); ++i) sum += decoded[i].value;
  EXPECT_NEAR(sum / 4096, 0.101, 0.002);
}

TEST(ZipMlCodecTest, UniformGridCollapsesSmallGradients) {
  // The §4.3 failure mode: with one large outlier, near-zero values all
  // map to the same level — information lost.
  ZipMlCodec codec(8, 5, /*stochastic_rounding=*/false);
  common::SparseGradient grad;
  common::Rng rng(163);
  for (uint64_t i = 0; i < 1000; ++i) {
    grad.push_back({i, rng.NextUniform(-1e-4, 1e-4)});
  }
  grad.push_back({2000, 1.0});  // Outlier stretches the range.
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  std::set<double> distinct;
  for (size_t i = 0; i < 1000; ++i) distinct.insert(decoded[i].value);
  EXPECT_LE(distinct.size(), 2u);  // All tiny values collapse.
}

TEST(ZipMlCodecTest, ConstantValuesRoundTripExactly) {
  ZipMlCodec codec(8);
  common::SparseGradient grad = {{1, 0.5}, {2, 0.5}, {3, 0.5}};
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  for (const auto& p : decoded) EXPECT_DOUBLE_EQ(p.value, 0.5);
}

TEST(ZipMlCodecTest, RejectsUnsupportedBitWidth) {
  EXPECT_DEATH(ZipMlCodec(12), "");
}

TEST(OneBitCodecTest, ReconstructsSignTimesMeanMagnitude) {
  OneBitCodec codec;
  common::SparseGradient grad = {{1, 0.2}, {2, -0.4}, {3, 0.6}, {4, -0.2}};
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), 4u);
  EXPECT_DOUBLE_EQ(decoded[0].value, 0.4);   // Mean of {0.2, 0.6}.
  EXPECT_DOUBLE_EQ(decoded[1].value, -0.3);  // -Mean of {0.4, 0.2}.
  EXPECT_DOUBLE_EQ(decoded[2].value, 0.4);
  EXPECT_DOUBLE_EQ(decoded[3].value, -0.3);
}

TEST(OneBitCodecTest, SignsAlwaysPreserved) {
  OneBitCodec codec;
  const auto grad = MakeGradient(3000, 1 << 20, 167);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  for (size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ(decoded[i].value >= 0, grad[i].value >= 0);
  }
  // ~4 + 1/8 bytes per pair; far below raw 12.
  EXPECT_LT(msg.size(), grad.size() * 5 + 32);
}

TEST(OneBitCodecTest, AllPositiveValues) {
  OneBitCodec codec;
  common::SparseGradient grad = {{1, 1.0}, {5, 3.0}};
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_DOUBLE_EQ(decoded[0].value, 2.0);
  EXPECT_DOUBLE_EQ(decoded[1].value, 2.0);
}

TEST(CodecFactoryTest, BuildsEveryKnownCodec) {
  for (const auto& name : core::KnownCodecNames()) {
    auto result = core::MakeCodec(name);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ((*result)->Name(), name);
  }
}

TEST(CodecFactoryTest, UnknownNameFails) {
  auto result = core::MakeCodec("gzip");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kNotFound);
}

TEST(CodecFactoryTest, AllCodecsRoundTripKeysExactly) {
  const auto grad = MakeGradient(800, 1 << 24, 173);
  for (const auto& name : core::KnownCodecNames()) {
    auto codec = std::move(core::MakeCodec(name)).value();
    EncodedGradient msg;
    ASSERT_TRUE(codec->Encode(grad, &msg).ok()) << name;
    common::SparseGradient decoded;
    ASSERT_TRUE(codec->Decode(msg, &decoded).ok()) << name;
    ASSERT_EQ(decoded.size(), grad.size()) << name;
    for (size_t i = 0; i < grad.size(); ++i) {
      ASSERT_EQ(decoded[i].key, grad[i].key)
          << name << " corrupted key at " << i;
    }
  }
}

}  // namespace
}  // namespace sketchml::compress
