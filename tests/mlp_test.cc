#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/synthetic.h"

namespace sketchml::ml {
namespace {

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  Mlp mlp({4, 8, 3});
  EXPECT_EQ(mlp.NumParams(), 4u * 8 + 8 + 8u * 3 + 3);
}

TEST(MlpTest, ForwardProducesProbabilities) {
  Mlp mlp({10, 16, 4}, 5);
  Dataset data = GenerateSyntheticMnist(5, /*side=*/2, /*num_classes=*/4, 7);
  // side 2 => 4 pixels, but our net expects 10 inputs: indexes < 4 fit.
  const double loss = mlp.ComputeMeanLoss(data);
  EXPECT_GT(loss, 0.0);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  Mlp mlp({3, 4, 2}, 9);
  std::vector<Instance> instances(2);
  instances[0].features = {{0, 1.0f}, {2, -0.5f}};
  instances[0].label = 0;
  instances[1].features = {{1, 0.7f}};
  instances[1].label = 1;
  Dataset data(std::move(instances), 3);

  common::SparseGradient grad;
  mlp.ComputeBatchGradient(data, 0, 2, &grad);

  // Spot-check a handful of parameters against central differences.
  const double h = 1e-5;
  for (size_t probe : {0u, 5u, 11u, 17u, 20u}) {
    double analytic = 0.0;
    for (const auto& p : grad) {
      if (p.key == probe) analytic = p.value;
    }
    auto& params = mlp.mutable_params();
    const double original = params[probe];
    params[probe] = original + h;
    const double up = mlp.ComputeMeanLoss(data);
    params[probe] = original - h;
    const double down = mlp.ComputeMeanLoss(data);
    params[probe] = original;
    EXPECT_NEAR(analytic, (up - down) / (2 * h), 1e-4) << "param " << probe;
  }
}

TEST(MlpTest, TrainsOnSyntheticMnist) {
  Dataset data = GenerateSyntheticMnist(300, 10, 4, 21);
  Mlp mlp({100, 32, 4}, 23);
  const double initial_loss = mlp.ComputeMeanLoss(data);
  common::SparseGradient grad;
  for (int step = 0; step < 60; ++step) {
    const size_t begin = (step * 50) % 300;
    mlp.ComputeBatchGradient(data, begin, begin + 50, &grad);
    mlp.ApplySgd(grad, 0.05);
  }
  const double trained_loss = mlp.ComputeMeanLoss(data);
  EXPECT_LT(trained_loss, initial_loss * 0.6);
  EXPECT_GT(mlp.ComputeAccuracy(data), 0.6);
}

TEST(MlpTest, GradientKeysAreSortedAndDense) {
  Mlp mlp({16, 10, 3}, 31);  // Matches the 4x4 images below.
  Dataset data = GenerateSyntheticMnist(10, 4, 3, 33);
  common::SparseGradient grad;
  mlp.ComputeBatchGradient(data, 0, 10, &grad);
  EXPECT_TRUE(common::IsSortedByKey(grad));
  // Nearly all parameters receive gradient (dense NN gradients, §B.3);
  // only dead-ReLU rows can be missing.
  EXPECT_GT(grad.size(), mlp.NumParams() / 2);
}

TEST(MlpTest, RejectsTooFewLayers) {
  EXPECT_DEATH(Mlp({5}), "");
}

}  // namespace
}  // namespace sketchml::ml
