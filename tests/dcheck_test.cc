// SKETCHML_DCHECK contract tests, compiled in BOTH configurations:
//
//  - default preset (SKETCHML_DCHECK_ENABLED == 0): a failing DCHECK is a
//    no-op AND its condition is never evaluated — a side-effecting
//    condition must leave its counter untouched. This is the guarantee
//    that lets release binaries stay bit-identical to pre-DCHECK builds.
//  - checked preset (-DSKETCHML_DCHECK=ON): a failing DCHECK dies with
//    "DCheck failed: <condition>" and a passing one is silent.
//
// The same source file asserts both sides via SKETCHML_DCHECK_ENABLED, so
// running the full suite under build/ and build-checked/ (as CI does)
// covers the whole contract.

#include "common/logging.h"

#include <string>

#include "gtest/gtest.h"

namespace {

int g_evaluations = 0;

bool CountingPredicate(bool result) {
  ++g_evaluations;
  return result;
}

TEST(DCheckTest, PassingCheckIsSilent) {
  SKETCHML_DCHECK(1 + 1 == 2);
  SKETCHML_DCHECK_EQ(2, 2);
  SKETCHML_DCHECK_NE(1, 2);
  SKETCHML_DCHECK_LT(1, 2);
  SKETCHML_DCHECK_LE(2, 2);
  SKETCHML_DCHECK_GT(2, 1);
  SKETCHML_DCHECK_GE(2, 2);
}

TEST(DCheckTest, StreamsExtraContext) {
  // The streamed message must compile in both configurations (the
  // disabled form still type-checks it) and never evaluate when passing.
  const std::string detail = "context";
  SKETCHML_DCHECK(true) << "extra " << detail << " " << 42;
}

#if SKETCHML_DCHECK_ENABLED

TEST(DCheckDeathTest, FailingCheckDiesWithCondition) {
  EXPECT_DEATH(SKETCHML_DCHECK(CountingPredicate(false)),
               "DCheck failed: CountingPredicate\\(false\\)");
}

TEST(DCheckDeathTest, ComparisonMacroDies) {
  const int lo = 1, hi = 2;
  EXPECT_DEATH(SKETCHML_DCHECK_GE(lo, hi), "DCheck failed");
}

TEST(DCheckDeathTest, StreamedMessageReachesTheLog) {
  EXPECT_DEATH(SKETCHML_DCHECK(false) << "shard 7 out of range",
               "shard 7 out of range");
}

TEST(DCheckTest, EnabledCheckEvaluatesOnce) {
  g_evaluations = 0;
  SKETCHML_DCHECK(CountingPredicate(true));
  EXPECT_EQ(g_evaluations, 1);
}

#else  // !SKETCHML_DCHECK_ENABLED

TEST(DCheckTest, DisabledCheckNeverEvaluatesCondition) {
  g_evaluations = 0;
  SKETCHML_DCHECK(CountingPredicate(false));  // Would die if enabled.
  SKETCHML_DCHECK(CountingPredicate(true));
  EXPECT_EQ(g_evaluations, 0);
}

TEST(DCheckTest, DisabledComparisonNeverEvaluatesOperands) {
  g_evaluations = 0;
  SKETCHML_DCHECK_EQ(CountingPredicate(true), false);
  SKETCHML_DCHECK_LT(g_evaluations += 100, 0);  // Side effect must not run.
  EXPECT_EQ(g_evaluations, 0);
}

TEST(DCheckTest, DisabledFailingCheckIsANoOp) {
  SKETCHML_DCHECK(false) << "never printed, never fatal";
  SKETCHML_DCHECK_EQ(1, 2);
}

#endif  // SKETCHML_DCHECK_ENABLED

}  // namespace
