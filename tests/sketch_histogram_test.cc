// Sketch-native telemetry: KLL-backed metric histograms. Pins the
// accuracy contract (quantiles within the sketch's rank-error bound of
// an exact-sort oracle), the determinism contract (snapshots identical
// at any recording-thread count below the spill threshold), window
// retirement semantics, the cross-node serialize/merge path, and the
// obs-on/off bit-identity of training output.

#include "sketch/sketch_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/random.h"
#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/synthetic.h"

namespace sketchml {
namespace {

class SketchHistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::SketchHistogramRegistry::Global().Reset();
  }
  void TearDown() override {
    obs::SetMetricsEnabled(false);
    obs::SketchHistogramRegistry::Global().Reset();
    obs::MetricsRegistry::Global().Reset();
  }

  static obs::SketchHistogramSummary Summary(const std::string& name) {
    for (auto& s : obs::SketchHistogramRegistry::Global().Summaries()) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "no summary for " << name;
    return {};
  }
};

TEST_F(SketchHistogramTest, QuantilesWithinRankErrorOfOracle) {
  obs::SketchHistogram h =
      obs::SketchHistogramRegistry::Global().Get("test/oracle");
  common::Rng rng(71);
  std::vector<double> data;
  const int n = 60000;  // Well past the spill threshold.
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Heavy-tailed, like per-batch latencies with stragglers.
    const double v = rng.NextBernoulli(0.95)
                         ? 0.01 + 0.001 * rng.NextGaussian()
                         : 0.05 * std::exp(rng.NextGaussian());
    data.push_back(v);
    h.Record(v);
  }
  std::sort(data.begin(), data.end());

  const obs::SketchHistogramSummary s = Summary("test/oracle");
  ASSERT_EQ(s.count, static_cast<uint64_t>(n));
  EXPECT_DOUBLE_EQ(s.min, data.front());
  EXPECT_DOUBLE_EQ(s.max, data.back());
  ASSERT_GT(s.eps, 0.0);

  // The estimate at rank q must land between the oracle's order
  // statistics at ranks q ± 2ε — the same window the SLO gate uses.
  const auto oracle_at = [&](double rank) {
    const double clamped = std::clamp(rank, 0.0, 1.0);
    const size_t idx = std::min(
        data.size() - 1, static_cast<size_t>(clamped * data.size()));
    return data[idx];
  };
  const struct {
    double q;
    double estimate;
  } checks[] = {{0.50, s.p50.value},
                {0.90, s.p90.value},
                {0.99, s.p99.value},
                {0.999, s.p999.value}};
  for (const auto& check : checks) {
    EXPECT_GE(check.estimate, oracle_at(check.q - 2.0 * s.eps)) << check.q;
    EXPECT_LE(check.estimate, oracle_at(check.q + 2.0 * s.eps)) << check.q;
  }
  // The reported bounds bracket the estimate by construction.
  EXPECT_LE(s.p99.lo, s.p99.value);
  EXPECT_GE(s.p99.hi, s.p99.value);
}

TEST_F(SketchHistogramTest, SnapshotsIdenticalAcrossThreadCounts) {
  // The same multiset recorded from 1, 2, and 4 threads must produce
  // bit-identical summaries: below the spill threshold the canonical
  // rebuild gathers the exact multiset regardless of partitioning.
  common::Rng rng(73);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(rng.NextGaussian());

  std::vector<obs::SketchHistogramSummary> per_thread_count;
  for (int threads : {1, 2, 4}) {
    obs::SketchHistogramRegistry::Global().Reset();
    obs::SketchHistogram h =
        obs::SketchHistogramRegistry::Global().Get("test/threads");
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = t; i < values.size(); i += threads) {
          h.Record(values[i]);
        }
      });
    }
    for (auto& thread : pool) thread.join();
    per_thread_count.push_back(Summary("test/threads"));
  }

  const obs::SketchHistogramSummary& first = per_thread_count.front();
  EXPECT_EQ(first.count, 3000u);
  for (const auto& s : per_thread_count) {
    EXPECT_EQ(s.count, first.count);
    EXPECT_EQ(s.min, first.min);
    EXPECT_EQ(s.max, first.max);
    for (auto member : {&obs::SketchHistogramSummary::p50,
                        &obs::SketchHistogramSummary::p90,
                        &obs::SketchHistogramSummary::p99,
                        &obs::SketchHistogramSummary::p999,
                        &obs::SketchHistogramSummary::wp50,
                        &obs::SketchHistogramSummary::wp99}) {
      EXPECT_EQ((s.*member).value, (first.*member).value);
      EXPECT_EQ((s.*member).lo, (first.*member).lo);
      EXPECT_EQ((s.*member).hi, (first.*member).hi);
    }
  }
}

TEST_F(SketchHistogramTest, WindowRetirementKeepsRecentEpochsOnly) {
  obs::SketchHistogram h =
      obs::SketchHistogramRegistry::Global().Get("test/windows");
  // Ten "epochs", each recording 100 copies of the epoch index.
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 100; ++i) h.Record(static_cast<double>(epoch));
    obs::SketchHistogramRegistry::Global().AdvanceWindows();
  }

  const obs::SketchHistogramSummary s = Summary("test/windows");
  // Lifetime view covers everything ever recorded.
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  // The ring holds only the newest kSketchHistogramWindows epochs; the
  // two oldest (values 0 and 1) were evicted, so no windowed quantile can
  // return them.
  EXPECT_EQ(s.windows, obs::kSketchHistogramWindows);
  EXPECT_EQ(s.window_count,
            static_cast<uint64_t>(obs::kSketchHistogramWindows) * 100u);
  EXPECT_GE(s.wp50.lo, 2.0);
  EXPECT_GE(s.wp50.value, 2.0);
  // Live tail joins the windowed view before the next retirement.
  for (int i = 0; i < 100; ++i) h.Record(10.0);
  const obs::SketchHistogramSummary with_tail = Summary("test/windows");
  EXPECT_EQ(with_tail.count, 1100u);
  EXPECT_EQ(with_tail.window_count,
            static_cast<uint64_t>(obs::kSketchHistogramWindows) * 100u +
                100u);
  EXPECT_EQ(with_tail.windows, obs::kSketchHistogramWindows);
}

TEST_F(SketchHistogramTest, SerializedTailMergesLikeLocalRecording) {
  // Cross-node aggregation: two "workers" record disjoint halves, their
  // serialized tails merge into a cluster slot whose quantiles match a
  // sketch that saw the halves directly.
  auto& registry = obs::SketchHistogramRegistry::Global();
  obs::SketchHistogram w0 = registry.Get("test/lane", {{"worker", "0"}});
  obs::SketchHistogram w1 = registry.Get("test/lane", {{"worker", "1"}});
  obs::SketchHistogram cluster = registry.Get("test/lane_cluster");
  common::Rng rng(79);
  for (int i = 0; i < 1500; ++i) {
    const double v = rng.NextGaussian();
    (i % 2 == 0 ? w0 : w1).Record(v);
  }

  for (const obs::SketchHistogram* worker : {&w0, &w1}) {
    const std::vector<uint8_t> payload = registry.SerializeTail(*worker);
    ASSERT_FALSE(payload.empty());
    // Non-consuming: serializing again yields the identical payload.
    EXPECT_EQ(registry.SerializeTail(*worker), payload);
    ASSERT_TRUE(
        registry.MergeSerialized(cluster, payload.data(), payload.size())
            .ok());
  }

  const obs::SketchHistogramSummary merged = Summary("test/lane_cluster");
  EXPECT_EQ(merged.count, 1500u);
  // Every retained item survives serialization verbatim and the merged
  // multiset equals the union, so quantiles agree with a direct merge of
  // the two worker summaries' sources within the rank-error window.
  const obs::SketchHistogramSummary s0 = Summary(
      obs::LabeledName("test/lane", {{"worker", "0"}}));
  const obs::SketchHistogramSummary s1 = Summary(
      obs::LabeledName("test/lane", {{"worker", "1"}}));
  EXPECT_EQ(merged.count, s0.count + s1.count);
  EXPECT_DOUBLE_EQ(merged.min, std::min(s0.min, s1.min));
  EXPECT_DOUBLE_EQ(merged.max, std::max(s0.max, s1.max));

  // Corrupt payloads are rejected, never crash.
  const std::vector<uint8_t> payload = registry.SerializeTail(w0);
  EXPECT_FALSE(
      registry.MergeSerialized(cluster, payload.data(), payload.size() / 2)
          .ok());
}

TEST_F(SketchHistogramTest, InertAndDisabledHandlesRecordNothing) {
  obs::SketchHistogram inert;  // Default-constructed: no registry slot.
  inert.Record(1.0);           // Must be a no-op, not a crash.

  obs::SketchHistogram h =
      obs::SketchHistogramRegistry::Global().Get("test/disabled");
  obs::SetMetricsEnabled(false);
  for (int i = 0; i < 100; ++i) h.Record(1.0);
  obs::SetMetricsEnabled(true);
  for (auto& s : obs::SketchHistogramRegistry::Global().Summaries()) {
    EXPECT_NE(s.name, "test/disabled");  // Empty slots are skipped.
  }
}

TEST_F(SketchHistogramTest, SnapshotCarriesSketchSummaries) {
  // The function-pointer seam: MetricsRegistry snapshots must include
  // sketch summaries once the sketch registry exists.
  obs::SketchHistogram h =
      obs::SketchHistogramRegistry::Global().Get("test/seam");
  for (int i = 0; i < 10; ++i) h.Record(static_cast<double>(i));
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const obs::SketchHistogramSummary* s = snap.FindSketch("test/seam");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 10u);
  EXPECT_DOUBLE_EQ(s->min, 0.0);
  EXPECT_DOUBLE_EQ(s->max, 9.0);
}

TEST_F(SketchHistogramTest, TrainingOutputBitIdenticalWithObsOnAndOff) {
  // The telemetry layer reads training state but never influences it:
  // losses and message bytes must match bit for bit whether sketch
  // recording and epoch-boundary merging run or not.
  ml::SyntheticConfig config;
  config.num_instances = 800;
  config.dim = 1 << 12;
  config.seed = 83;
  ml::Dataset all = ml::GenerateSynthetic(config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  const auto run = [&](bool obs_on) {
    obs::SetMetricsEnabled(obs_on);
    obs::SketchHistogramRegistry::Global().Reset();
    obs::MetricsRegistry::Global().Reset();
    dist::ClusterConfig cluster;
    cluster.num_workers = 3;
    dist::TrainerConfig trainer_config;
    trainer_config.learning_rate = 0.05;
    trainer_config.adam_epsilon = 0.01;
    dist::DistributedTrainer trainer(
        &train, &test, loss.get(),
        std::move(core::MakeCodec("sketchml")).value(), cluster,
        trainer_config);
    auto stats = trainer.Run(2);
    EXPECT_TRUE(stats.ok());
    return std::move(stats).value();
  };

  const auto with_obs = run(true);
  // The sketch lanes actually recorded while obs was on.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_FALSE(snap.sketches.empty());
  EXPECT_GT(snap.CounterValueOf("telemetry/merges"), 0.0);
  const auto without_obs = run(false);

  ASSERT_EQ(with_obs.size(), without_obs.size());
  for (size_t e = 0; e < with_obs.size(); ++e) {
    EXPECT_EQ(with_obs[e].bytes_up, without_obs[e].bytes_up);
    EXPECT_EQ(with_obs[e].bytes_down, without_obs[e].bytes_down);
    EXPECT_EQ(with_obs[e].messages, without_obs[e].messages);
    EXPECT_DOUBLE_EQ(with_obs[e].train_loss, without_obs[e].train_loss);
    EXPECT_DOUBLE_EQ(with_obs[e].test_loss, without_obs[e].test_loss);
    EXPECT_DOUBLE_EQ(with_obs[e].network_seconds,
                     without_obs[e].network_seconds);
  }
}

}  // namespace
}  // namespace sketchml
