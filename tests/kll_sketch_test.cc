#include "sketch/kll_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/byte_buffer.h"
#include "common/random.h"

namespace sketchml::sketch {
namespace {

double TrueRankFraction(const std::vector<double>& sorted, double value) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) / sorted.size();
}

TEST(KllSketchTest, EmptySketchChecksOnQuery) {
  KllSketch sketch;
  EXPECT_EQ(sketch.Count(), 0u);
  EXPECT_DEATH(sketch.Quantile(0.5), "");
  EXPECT_DEATH(sketch.Min(), "");
}

TEST(KllSketchTest, SmallStreamIsExact) {
  KllSketch sketch(256);
  for (double v : {4.0, 2.0, 1.0, 3.0}) sketch.Update(v);
  EXPECT_DOUBLE_EQ(sketch.Min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Max(), 4.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 4.0);
  EXPECT_NEAR(sketch.Quantile(0.5), 2.0, 1.0);
}

class KllErrorTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KllErrorTest, RankErrorSmall) {
  const int k = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  KllSketch sketch(k, /*seed=*/5);
  common::Rng rng(31);
  std::vector<double> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Heavy-tailed mix to mimic gradient value distributions.
    const double v = rng.NextBernoulli(0.9) ? rng.NextGaussian() * 0.01
                                            : rng.NextGaussian();
    data.push_back(v);
    sketch.Update(v);
  }
  std::sort(data.begin(), data.end());

  // Expected rank error ~ O(1/k); allow a safety factor.
  const double tolerance = k >= 256 ? 0.02 : 0.05;
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double estimate = sketch.Quantile(q);
    EXPECT_NEAR(TrueRankFraction(data, estimate), q, tolerance)
        << "k=" << k << " n=" << n << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KllErrorTest,
                         ::testing::Combine(::testing::Values(128, 256, 512),
                                            ::testing::Values(10000, 100000)));

TEST(KllSketchTest, SpaceIsBounded) {
  KllSketch sketch(256);
  common::Rng rng(37);
  for (int i = 0; i < 500000; ++i) sketch.Update(rng.NextDouble());
  // Retained items ~ k * sum(decay^i) = k * 3 = 768; generous bound.
  EXPECT_LT(sketch.NumRetained(), 4096u);
  EXPECT_EQ(sketch.Count(), 500000u);
}

TEST(KllSketchTest, MinMaxAlwaysExact) {
  KllSketch sketch(64);
  common::Rng rng(41);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextGaussian() * 100;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sketch.Update(v);
  }
  EXPECT_DOUBLE_EQ(sketch.Min(), lo);
  EXPECT_DOUBLE_EQ(sketch.Max(), hi);
}

TEST(KllSketchTest, MergeMatchesCombinedStream) {
  common::Rng rng(43);
  KllSketch a(256, 1), b(256, 2);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextGaussian();
    all.push_back(v);
    (i % 2 == 0 ? a : b).Update(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), 50000u);
  std::sort(all.begin(), all.end());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(TrueRankFraction(all, a.Quantile(q)), q, 0.03);
  }
}

TEST(KllSketchTest, MergeEmptySketches) {
  KllSketch a, b;
  a.Merge(b);
  EXPECT_EQ(a.Count(), 0u);
  b.Update(1.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 1.0);
}

TEST(KllSketchTest, RankIsMonotone) {
  KllSketch sketch(256);
  common::Rng rng(47);
  for (int i = 0; i < 20000; ++i) sketch.Update(rng.NextGaussian());
  double previous = -1.0;
  for (double v = -3.0; v <= 3.0; v += 0.25) {
    const double r = sketch.Rank(v);
    EXPECT_GE(r, previous);
    previous = r;
  }
  EXPECT_NEAR(sketch.Rank(0.0), 0.5, 0.03);
}

TEST(KllSketchTest, EqualDepthSplitsAreMonotoneAndCoverRange) {
  KllSketch sketch(256);
  common::Rng rng(53);
  for (int i = 0; i < 30000; ++i) sketch.Update(rng.NextGaussian() * 0.1);
  const auto splits = sketch.EqualDepthSplits(256);
  ASSERT_EQ(splits.size(), 257u);
  EXPECT_DOUBLE_EQ(splits.front(), sketch.Min());
  EXPECT_DOUBLE_EQ(splits.back(), sketch.Max());
  EXPECT_TRUE(std::is_sorted(splits.begin(), splits.end()));
}

TEST(KllSketchTest, EqualDepthSplitsEqualizePopulation) {
  KllSketch sketch(512);
  common::Rng rng(59);
  std::vector<double> data;
  for (int i = 0; i < 100000; ++i) {
    const double v = std::exp(rng.NextGaussian());  // Very skewed.
    data.push_back(v);
    sketch.Update(v);
  }
  const int q = 16;
  const auto splits = sketch.EqualDepthSplits(q);
  std::sort(data.begin(), data.end());
  for (int b = 0; b < q; ++b) {
    const auto lo = std::lower_bound(data.begin(), data.end(), splits[b]);
    const auto hi = std::lower_bound(data.begin(), data.end(), splits[b + 1]);
    const double frac = static_cast<double>(hi - lo) / data.size();
    EXPECT_NEAR(frac, 1.0 / q, 0.03) << "bucket " << b;
  }
}

TEST(KllSketchTest, SerializeRoundTripPreservesSummary) {
  KllSketch sketch(256, /*seed=*/7);
  common::Rng rng(61);
  for (int i = 0; i < 50000; ++i) sketch.Update(rng.NextGaussian());

  common::ByteWriter writer(sketch.SerializedSize());
  sketch.Serialize(&writer);
  EXPECT_EQ(writer.size(), sketch.SerializedSize());

  common::ByteReader reader(writer.buffer());
  KllSketch restored;
  ASSERT_TRUE(KllSketch::Deserialize(&reader, &restored).ok());
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(restored.Count(), sketch.Count());
  EXPECT_DOUBLE_EQ(restored.Min(), sketch.Min());
  EXPECT_DOUBLE_EQ(restored.Max(), sketch.Max());
  // The wire format carries the retained items verbatim, so every
  // quantile estimate survives bit-for-bit.
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(restored.Quantile(q), sketch.Quantile(q)) << q;
  }
}

TEST(KllSketchTest, DeserializeRejectsCorruptPayloads) {
  KllSketch sketch(64);
  for (int i = 0; i < 1000; ++i) sketch.Update(i * 0.5);
  common::ByteWriter writer;
  sketch.Serialize(&writer);

  // Truncated at every prefix length: must fail, never crash.
  const std::vector<uint8_t>& bytes = writer.buffer();
  for (size_t len = 0; len < bytes.size(); ++len) {
    common::ByteReader reader(bytes.data(), len);
    KllSketch out;
    EXPECT_FALSE(KllSketch::Deserialize(&reader, &out).ok()) << len;
  }

  // Bad version byte.
  std::vector<uint8_t> bad = bytes;
  bad[0] = 0xFF;
  common::ByteReader reader(bad);
  KllSketch out;
  EXPECT_FALSE(KllSketch::Deserialize(&reader, &out).ok());
}

TEST(KllSketchTest, UpdateWeightedMatchesRepeatedUpdates) {
  // Weight-w insertion must estimate ranks like w copies of the value.
  KllSketch weighted(256, /*seed=*/9);
  KllSketch repeated(256, /*seed=*/9);
  common::Rng rng(67);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextGaussian();
    weighted.UpdateWeighted(v, 4);
    for (int r = 0; r < 4; ++r) repeated.Update(v);
  }
  EXPECT_EQ(weighted.Count(), repeated.Count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(weighted.Quantile(q), repeated.Quantile(q), 0.15) << q;
  }
}

TEST(KllSketchTest, UpdateWeightedRequiresPowerOfTwo) {
  KllSketch sketch(64);
  sketch.UpdateWeighted(1.0, 1);
  sketch.UpdateWeighted(2.0, 8);
  EXPECT_EQ(sketch.Count(), 9u);
  EXPECT_DEATH(sketch.UpdateWeighted(3.0, 3), "");
  EXPECT_DEATH(sketch.UpdateWeighted(3.0, 0), "");
}

TEST(KllSketchTest, NormalizedRankErrorShrinksWithK) {
  const double e128 = KllSketch::NormalizedRankError(128);
  const double e256 = KllSketch::NormalizedRankError(256);
  const double e512 = KllSketch::NormalizedRankError(512);
  EXPECT_GT(e128, e256);
  EXPECT_GT(e256, e512);
  // The published constant for k=256 is ~1.6% — the SLO gate's window.
  EXPECT_NEAR(e256, 0.0156, 0.002);
  KllSketch sketch(256);
  EXPECT_DOUBLE_EQ(sketch.NormalizedRankError(),
                   KllSketch::NormalizedRankError(256));
}

}  // namespace
}  // namespace sketchml::sketch
