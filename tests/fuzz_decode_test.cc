// Failure-injection tests: decoders must survive arbitrary corruption of
// the wire bytes — truncation, random byte flips, random garbage — by
// returning a Status (or, for undetectable flips, a decoded gradient),
// never by crashing, hanging, or attempting giant allocations.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sparse.h"
#include "core/codec_factory.h"

namespace sketchml::compress {
namespace {

common::SparseGradient MakeGradient(size_t count, uint64_t dim,
                                    uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(dim));
  common::SparseGradient grad;
  for (uint64_t k : keys) grad.push_back({k, rng.NextGaussian() * 0.05});
  return grad;
}

class CodecFuzzTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecFuzzTest, SurvivesTruncationAtEveryPrefixLength) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  const auto grad = MakeGradient(300, 1 << 18, 271);
  EncodedGradient msg;
  ASSERT_TRUE(codec->Encode(grad, &msg).ok());

  common::SparseGradient decoded;
  // Step through prefix lengths (all below 64, then every 7th) — decode
  // must return cleanly on each.
  for (size_t len = 0; len < msg.bytes.size(); len += (len < 64 ? 1 : 7)) {
    EncodedGradient truncated;
    truncated.bytes.assign(msg.bytes.begin(), msg.bytes.begin() + len);
    codec->Decode(truncated, &decoded);  // Must not crash.
  }
}

TEST_P(CodecFuzzTest, SurvivesRandomByteFlips) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  const auto grad = MakeGradient(300, 1 << 18, 277);
  EncodedGradient msg;
  ASSERT_TRUE(codec->Encode(grad, &msg).ok());

  common::Rng rng(281);
  common::SparseGradient decoded;
  for (int trial = 0; trial < 200; ++trial) {
    EncodedGradient corrupted = msg;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(corrupted.bytes.size());
      corrupted.bytes[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    const common::Status status = codec->Decode(corrupted, &decoded);
    if (status.ok()) {
      // Undetectable corruption may change content but must still honor
      // basic size sanity (no billion-element explosions).
      EXPECT_LT(decoded.size(), msg.bytes.size() * 8);
    }
  }
}

TEST_P(CodecFuzzTest, SurvivesRandomGarbage) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  common::Rng rng(283);
  common::SparseGradient decoded;
  for (int trial = 0; trial < 300; ++trial) {
    EncodedGradient garbage;
    const size_t len = rng.NextBounded(256);
    garbage.bytes.resize(len);
    for (auto& b : garbage.bytes) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    codec->Decode(garbage, &decoded);  // Must not crash.
  }
}

TEST_P(CodecFuzzTest, HugeDeclaredCountsAreRejectedCheaply) {
  // A message declaring 2^40 pairs must fail validation instead of
  // attempting the allocation.
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  EncodedGradient msg;
  msg.bytes = {0x01};  // Version / type byte.
  // Varint for a huge count.
  for (int i = 0; i < 5; ++i) msg.bytes.push_back(0xff);
  msg.bytes.push_back(0x7f);
  msg.bytes.resize(64, 0);
  common::SparseGradient decoded;
  const common::Status status = codec->Decode(msg, &decoded);
  // Formats whose count field sits at offset 1 must reject outright; for
  // the others the bytes parse as something tiny — either way no giant
  // allocation may happen.
  if (status.ok()) {
    EXPECT_LT(decoded.size(), 64u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzzTest,
                         ::testing::ValuesIn(core::KnownCodecNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sketchml::compress
