// Failure-injection tests: decoders must survive arbitrary corruption of
// the wire bytes — truncation, random byte flips, random garbage — by
// returning a Status (or, for undetectable flips, a decoded gradient),
// never by crashing, hanging, or attempting giant allocations.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/framing.h"
#include "common/random.h"
#include "common/sparse.h"
#include "core/codec_factory.h"

namespace sketchml::compress {
namespace {

common::SparseGradient MakeGradient(size_t count, uint64_t dim,
                                    uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(dim));
  common::SparseGradient grad;
  for (uint64_t k : keys) grad.push_back({k, rng.NextGaussian() * 0.05});
  return grad;
}

class CodecFuzzTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecFuzzTest, SurvivesTruncationAtEveryPrefixLength) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  const auto grad = MakeGradient(300, 1 << 18, 271);
  EncodedGradient msg;
  ASSERT_TRUE(codec->Encode(grad, &msg).ok());

  common::SparseGradient decoded;
  // Step through prefix lengths (all below 64, then every 7th) — decode
  // must return cleanly on each.
  for (size_t len = 0; len < msg.bytes.size(); len += (len < 64 ? 1 : 7)) {
    EncodedGradient truncated;
    truncated.bytes.assign(msg.bytes.begin(), msg.bytes.begin() + len);
    // The fuzz contract is only "no crash": a truncated message may fail
    // with any code, and a prefix that happens to parse is acceptable.
    // NOLINTNEXTLINE(sketchml-discarded-status): fuzz checks survival only.
    (void)codec->Decode(truncated, &decoded);
  }
}

TEST_P(CodecFuzzTest, SurvivesRandomByteFlips) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  const auto grad = MakeGradient(300, 1 << 18, 277);
  EncodedGradient msg;
  ASSERT_TRUE(codec->Encode(grad, &msg).ok());

  common::Rng rng(281);
  common::SparseGradient decoded;
  for (int trial = 0; trial < 200; ++trial) {
    EncodedGradient corrupted = msg;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(corrupted.bytes.size());
      corrupted.bytes[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    const common::Status status = codec->Decode(corrupted, &decoded);
    if (status.ok()) {
      // Undetectable corruption may change content but must still honor
      // basic size sanity (no billion-element explosions).
      EXPECT_LT(decoded.size(), msg.bytes.size() * 8);
    }
  }
}

TEST_P(CodecFuzzTest, SurvivesRandomGarbage) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  common::Rng rng(283);
  common::SparseGradient decoded;
  for (int trial = 0; trial < 300; ++trial) {
    EncodedGradient garbage;
    const size_t len = rng.NextBounded(256);
    garbage.bytes.resize(len);
    for (auto& b : garbage.bytes) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    // As above: garbage bytes must be survived, not classified.
    // NOLINTNEXTLINE(sketchml-discarded-status): fuzz checks survival only.
    (void)codec->Decode(garbage, &decoded);
  }
}

TEST_P(CodecFuzzTest, HugeDeclaredCountsAreRejectedCheaply) {
  // A message declaring 2^40 pairs must fail validation instead of
  // attempting the allocation.
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  EncodedGradient msg;
  msg.bytes = {0x01};  // Version / type byte.
  // Varint for a huge count.
  for (int i = 0; i < 5; ++i) msg.bytes.push_back(0xff);
  msg.bytes.push_back(0x7f);
  msg.bytes.resize(64, 0);
  common::SparseGradient decoded;
  const common::Status status = codec->Decode(msg, &decoded);
  // Formats whose count field sits at offset 1 must reject outright; for
  // the others the bytes parse as something tiny — either way no giant
  // allocation may happen.
  if (status.ok()) {
    EXPECT_LT(decoded.size(), 64u);
  }
}

TEST_P(CodecFuzzTest, SurvivesSingleBitFlipAtEveryPosition) {
  // Exhaustive single-bit damage over the head of the message (where
  // every format keeps its counts and offsets) and sampled positions
  // beyond: decode must return cleanly each time.
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  const auto grad = MakeGradient(120, 1 << 18, 293);
  EncodedGradient msg;
  ASSERT_TRUE(codec->Encode(grad, &msg).ok());

  common::SparseGradient decoded;
  for (size_t byte = 0; byte < msg.bytes.size();
       byte += (byte < 96 ? 1 : 13)) {
    for (int bit = 0; bit < 8; ++bit) {
      EncodedGradient corrupted = msg;
      corrupted.bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      const common::Status status = codec->Decode(corrupted, &decoded);
      if (status.ok()) {
        EXPECT_LT(decoded.size(), msg.bytes.size() * 8);
      }
    }
  }
}

TEST_P(CodecFuzzTest, ZeroLengthMessageIsHandledCleanly) {
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  common::SparseGradient decoded;
  EncodedGradient empty;
  const common::Status status = codec->Decode(empty, &decoded);
  if (status.ok()) {
    EXPECT_TRUE(decoded.empty());
  }
}

TEST_P(CodecFuzzTest, FramedMessagesNeverFalseOkOnCorruption) {
  // The trainer's fault path wraps every codec message in the CRC frame;
  // at that layer *every* single-bit flip and truncation must be
  // detected, so no corrupted payload ever reaches the codec undetected.
  auto codec = std::move(core::MakeCodec(GetParam())).value();
  const auto grad = MakeGradient(120, 1 << 18, 307);
  EncodedGradient msg;
  ASSERT_TRUE(codec->Encode(grad, &msg).ok());
  std::vector<uint8_t> framed;
  common::FrameMessage(msg.bytes, &framed);

  std::vector<uint8_t> payload;
  for (size_t byte = 0; byte < framed.size();
       byte += (byte < 64 ? 1 : 11)) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = framed;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(common::UnframeMessage(flipped, &payload).ok())
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
  for (size_t keep = 0; keep < framed.size();
       keep += (keep < 64 ? 1 : 11)) {
    std::vector<uint8_t> cut(framed.begin(), framed.begin() + keep);
    EXPECT_FALSE(common::UnframeMessage(cut, &payload).ok())
        << "undetected truncation to " << keep << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzzTest,
                         ::testing::ValuesIn(core::KnownCodecNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sketchml::compress
