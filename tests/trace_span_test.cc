#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/obs.h"

namespace sketchml::obs {
namespace {

/// Enables tracing for one test and restores the previous state.
class ScopedTracing {
 public:
  ScopedTracing() : was_enabled_(TracingEnabled()) {
    SetTracingEnabled(true);
    TraceLog::Global().Reset();
  }
  ~ScopedTracing() {
    TraceLog::Global().Reset();
    SetTracingEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

/// Minimal JSON syntax checker: consumes one JSON value and reports
/// whether the whole input is exactly one well-formed value. Strict
/// enough to reject every malformed construct the exporter could emit
/// (trailing commas, bare words, unterminated strings, NaN/Inf).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!ParseValue()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string NameOf(const TraceEvent& e) { return e.name; }

TEST(TraceSpanTest, RecordsCompletedSpanWithArgs) {
  ScopedTracing scoped;
  {
    TraceSpan span("test", "phase_a");
    span.Arg("bytes", 128.0);
    span.Arg("pairs", 16.0);
  }
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(NameOf(events[0]), "phase_a");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_EQ(events[0].num_args, 2);
  EXPECT_STREQ(events[0].args[0].key, "bytes");
  EXPECT_DOUBLE_EQ(events[0].args[0].value, 128.0);
}

TEST(TraceSpanTest, NestedSpansCompleteInnerFirstAndCoverInner) {
  ScopedTracing scoped;
  {
    TraceSpan outer("test", "outer");
    {
      TraceSpan inner("test", "inner");
    }
  }
  auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  // CollectEvents sorts by begin time: outer began first.
  EXPECT_EQ(NameOf(events[0]), "outer");
  EXPECT_EQ(NameOf(events[1]), "inner");
  // The outer span fully covers the inner one.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_GE(events[0].ts_ns + events[0].dur_ns,
            events[1].ts_ns + events[1].dur_ns);
}

TEST(TraceSpanTest, DisabledSpansRecordNothing) {
  ScopedTracing scoped;
  SetTracingEnabled(false);
  {
    TraceSpan span("test", "invisible");
    span.Arg("x", 1.0);
  }
  SetTracingEnabled(true);
  EXPECT_TRUE(TraceLog::Global().CollectEvents().empty());
}

TEST(TraceSpanTest, LongNamesAreTruncatedNotOverflowed) {
  ScopedTracing scoped;
  const std::string long_name(200, 'x');
  { TraceSpan span("test", long_name); }
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(NameOf(events[0]),
            std::string(TraceEvent::kNameCapacity, 'x'));
}

TEST(TraceSpanTest, RingWraparoundKeepsNewestAndCountsDropped) {
  ScopedTracing scoped;
  TraceLog::Global().SetRingCapacity(16);
  // Capacity applies to threads that record their first event afterward,
  // so wrap on a fresh thread.
  std::thread worker([] {
    for (int i = 0; i < 40; ++i) {
      TraceSpan span("test", "w" + std::to_string(i));
    }
  });
  worker.join();
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(TraceLog::Global().DroppedEvents(), 24u);
  // The retained window is the newest 16 spans, oldest first.
  EXPECT_EQ(NameOf(events.front()), "w24");
  EXPECT_EQ(NameOf(events.back()), "w39");
  TraceLog::Global().SetRingCapacity(1 << 14);
}

TEST(TraceSpanTest, EmitSpanRecordsSyntheticDuration) {
  ScopedTracing scoped;
  EmitSpan("network", "modeled", 1000, 5000, {{"bytes", 42.0}});
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 5000u);
  EXPECT_EQ(events[0].num_args, 1);
  EXPECT_DOUBLE_EQ(events[0].args[0].value, 42.0);
}

TEST(TraceSpanTest, ChromeTraceJsonRoundTrips) {
  ScopedTracing scoped;
  {
    TraceSpan span("trainer", "epoch");
    span.Arg("epoch", 1.0);
    TraceSpan inner("codec", "encode/\"quoted\\name\"");
  }
  EmitSpan("network", "gather", 10, 20);
  std::ostringstream out;
  TraceLog::Global().WriteChromeTrace(out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonParser(json).Valid()) << json;
  // Chrome trace essentials: a traceEvents array of "X" complete events.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
  // Names with JSON metacharacters stay escaped.
  EXPECT_NE(json.find("encode/\\\"quoted\\\\name\\\""), std::string::npos);
}

TEST(TraceSpanTest, ChromeTraceFooterReportsDroppedEvents) {
  ScopedTracing scoped;
  TraceLog::Global().SetRingCapacity(16);  // 16 is the clamp minimum.
  std::thread worker([] {
    for (int i = 0; i < 28; ++i) {
      TraceSpan span("test", "drop" + std::to_string(i));
    }
  });
  worker.join();
  ASSERT_EQ(TraceLog::Global().DroppedEvents(), 12u);

  std::ostringstream out;
  TraceLog::Global().WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonParser(json).Valid()) << json;
  // Both the machine-readable top-level field and the metadata event that
  // surfaces truncation inside the Chrome/Perfetto UI.
  EXPECT_NE(json.find("\"droppedEvents\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":12"), std::string::npos);

  // The same count lands in the metrics registry for the sampler/report.
  const bool was_metrics = MetricsEnabled();
  SetMetricsEnabled(true);
  TraceLog::Global().PublishDroppedEvents();
  const auto snap = MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snap.GaugeValueOf("trace/dropped_events"), 12.0);
  SetMetricsEnabled(was_metrics);
  TraceLog::Global().SetRingCapacity(1 << 14);
}

TEST(TraceSpanTest, CleanRunReportsZeroDropped) {
  ScopedTracing scoped;
  { TraceSpan span("test", "kept"); }
  std::ostringstream out;
  TraceLog::Global().WriteChromeTrace(out);
  EXPECT_NE(out.str().find("\"droppedEvents\":0"), std::string::npos);
}

TEST(TraceSpanTest, EventsFromManyThreadsGetDistinctTids) {
  ScopedTracing scoped;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] { TraceSpan span("test", "thread_span"); });
  }
  for (auto& thread : threads) thread.join();
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 4u);
  std::vector<uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

}  // namespace
}  // namespace sketchml::obs
