// Reproducibility guarantees: with fixed seeds, every byte and every
// loss value is identical run to run — the property that makes the
// bench harness's results regenerable.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/synthetic.h"

namespace sketchml {
namespace {

TEST(DeterminismTest, CodecBytesAreIdenticalAcrossInstances) {
  common::SparseGradient grad;
  common::Rng rng(443);
  uint64_t key = 0;
  for (int i = 0; i < 2000; ++i) {
    key += 1 + rng.NextBounded(30);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  for (const auto& name : core::KnownCodecNames()) {
    auto a = std::move(core::MakeCodec(name)).value();
    auto b = std::move(core::MakeCodec(name)).value();
    compress::EncodedGradient msg_a, msg_b;
    ASSERT_TRUE(a->Encode(grad, &msg_a).ok()) << name;
    ASSERT_TRUE(b->Encode(grad, &msg_b).ok()) << name;
    EXPECT_EQ(msg_a.bytes, msg_b.bytes) << name;
  }
}

TEST(DeterminismTest, SuccessiveEncodesDifferOnlyWhereSeeded) {
  // SketchML reseeds its hash functions per message (deterministically),
  // so encoding the same gradient twice from one instance gives two
  // different-but-valid messages; a fresh instance replays the sequence.
  common::SparseGradient grad;
  common::Rng rng(449);
  uint64_t key = 0;
  for (int i = 0; i < 1000; ++i) {
    key += 1 + rng.NextBounded(30);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  core::SketchMlCodec first, second;
  compress::EncodedGradient f1, f2, s1, s2;
  ASSERT_TRUE(first.Encode(grad, &f1).ok());
  ASSERT_TRUE(first.Encode(grad, &f2).ok());
  ASSERT_TRUE(second.Encode(grad, &s1).ok());
  ASSERT_TRUE(second.Encode(grad, &s2).ok());
  EXPECT_NE(f1.bytes, f2.bytes);  // Per-message reseeding.
  EXPECT_EQ(f1.bytes, s1.bytes);  // Replayable sequence.
  EXPECT_EQ(f2.bytes, s2.bytes);
}

TEST(DeterminismTest, TrainerBytesAndLossesReplay) {
  ml::SyntheticConfig config;
  config.num_instances = 1200;
  config.dim = 1 << 13;
  config.seed = 457;
  ml::Dataset all = ml::GenerateSynthetic(config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  auto run = [&](int epochs) {
    dist::ClusterConfig cluster;
    cluster.num_workers = 3;
    dist::TrainerConfig trainer_config;
    trainer_config.learning_rate = 0.05;
    trainer_config.adam_epsilon = 0.01;
    dist::DistributedTrainer trainer(
        &train, &test, loss.get(),
        std::move(core::MakeCodec("sketchml")).value(), cluster,
        trainer_config);
    auto stats = trainer.Run(epochs);
    EXPECT_TRUE(stats.ok());
    return std::move(stats).value();
  };
  const auto a = run(3);
  const auto b = run(3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    // Bytes and losses are exactly deterministic; only measured CPU
    // seconds vary between runs.
    EXPECT_EQ(a[e].bytes_up, b[e].bytes_up);
    EXPECT_EQ(a[e].bytes_down, b[e].bytes_down);
    EXPECT_DOUBLE_EQ(a[e].train_loss, b[e].train_loss);
    EXPECT_DOUBLE_EQ(a[e].test_loss, b[e].test_loss);
  }
}

TEST(DeterminismTest, SerialAndParallelEpochsAreBitIdentical) {
  // The same config run with threads=1 and threads=8 must produce
  // byte-identical messages and identical modeled costs and losses:
  // every worker owns a forked codec seed lane and the driver reduces in
  // fixed worker order, so thread count can only change wall-clock.
  ml::SyntheticConfig config;
  config.num_instances = 1500;
  config.dim = 1 << 13;
  config.seed = 461;
  ml::Dataset all = ml::GenerateSynthetic(config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  auto run = [&](const std::string& codec, int threads, int servers) {
    dist::ClusterConfig cluster;
    cluster.num_workers = 5;
    cluster.num_servers = servers;
    dist::TrainerConfig trainer_config;
    trainer_config.learning_rate = 0.05;
    trainer_config.adam_epsilon = 0.01;
    trainer_config.num_threads = threads;
    dist::DistributedTrainer trainer(&train, &test, loss.get(),
                                     std::move(core::MakeCodec(codec)).value(),
                                     cluster, trainer_config);
    auto stats = trainer.Run(3);
    EXPECT_TRUE(stats.ok());
    return std::move(stats).value();
  };

  for (const char* codec : {"sketchml", "adam+key+quan", "zipml-16bit"}) {
    for (int servers : {1, 3}) {
      const auto serial = run(codec, 1, servers);
      const auto parallel = run(codec, 8, servers);
      ASSERT_EQ(serial.size(), parallel.size());
      for (size_t e = 0; e < serial.size(); ++e) {
        // Bytes, message counts, modeled network/update costs, and losses
        // are exact; only measured CPU seconds may differ between runs.
        EXPECT_EQ(serial[e].bytes_up, parallel[e].bytes_up)
            << codec << " S=" << servers;
        EXPECT_EQ(serial[e].bytes_down, parallel[e].bytes_down)
            << codec << " S=" << servers;
        EXPECT_EQ(serial[e].messages, parallel[e].messages)
            << codec << " S=" << servers;
        EXPECT_DOUBLE_EQ(serial[e].network_seconds, parallel[e].network_seconds)
            << codec << " S=" << servers;
        EXPECT_DOUBLE_EQ(serial[e].train_loss, parallel[e].train_loss)
            << codec << " S=" << servers;
        EXPECT_DOUBLE_EQ(serial[e].test_loss, parallel[e].test_loss)
            << codec << " S=" << servers;
      }
    }
  }
}

TEST(DeterminismTest, PooledSignStreamEncodeMatchesSerialBytes) {
  // SketchMlCodec with a thread pool encodes its two sign streams as
  // parallel tasks into side buffers; the concatenated message must be
  // byte-identical to the single-threaded layout.
  common::SparseGradient grad;
  common::Rng rng(467);
  uint64_t key = 0;
  for (int i = 0; i < 3000; ++i) {
    key += 1 + rng.NextBounded(20);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  common::ThreadPool pool(4);
  for (int round = 0; round < 4; ++round) {
    core::SketchMlCodec serial, pooled;
    pooled.SetThreadPool(&pool);
    compress::EncodedGradient serial_msg, pooled_msg;
    ASSERT_TRUE(serial.Encode(grad, &serial_msg).ok());
    ASSERT_TRUE(pooled.Encode(grad, &pooled_msg).ok());
    EXPECT_EQ(serial_msg.bytes, pooled_msg.bytes);
    EXPECT_EQ(serial.last_space_cost().Total(),
              pooled.last_space_cost().Total());
  }
}

TEST(DeterminismTest, CodecBankLanesAreIndependentAndReplayable) {
  common::SparseGradient grad;
  common::Rng rng(479);
  uint64_t key = 0;
  for (int i = 0; i < 500; ++i) {
    key += 1 + rng.NextBounded(30);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  auto bank_a = std::move(core::MakeCodecBank("sketchml", 4)).value();
  auto bank_b = std::move(core::MakeCodecBank("sketchml", 4)).value();
  ASSERT_EQ(bank_a.size(), 4u);
  std::vector<std::vector<uint8_t>> lane_bytes;
  for (size_t lane = 0; lane < bank_a.size(); ++lane) {
    compress::EncodedGradient msg_a, msg_b;
    ASSERT_TRUE(bank_a[lane]->Encode(grad, &msg_a).ok());
    ASSERT_TRUE(bank_b[lane]->Encode(grad, &msg_b).ok());
    EXPECT_EQ(msg_a.bytes, msg_b.bytes);  // Same lane replays.
    lane_bytes.push_back(msg_a.bytes);
  }
  for (size_t i = 0; i < lane_bytes.size(); ++i) {
    for (size_t j = i + 1; j < lane_bytes.size(); ++j) {
      EXPECT_NE(lane_bytes[i], lane_bytes[j]);  // Lanes are decorrelated.
    }
  }
}

TEST(DeterminismTest, FullWidthGroupHandlesTopBucket) {
  // q = 256, r = 1: group width 256 means local index 255 collides with
  // the kEmpty init value; verify the documented clamp behaviour.
  sketch::GroupedMinMaxSketch sketch(256, 1, 2, 1 << 12, 7);
  sketch.Insert(1, 255);
  sketch.Insert(2, 0);
  sketch.Insert(3, 254);
  EXPECT_EQ(sketch.Query(1, 0), 255);  // Untouched bins read as 255.
  EXPECT_EQ(sketch.Query(2, 0), 0);
  EXPECT_EQ(sketch.Query(3, 0), 254);
}

}  // namespace
}  // namespace sketchml
