// Reproducibility guarantees: with fixed seeds, every byte and every
// loss value is identical run to run — the property that makes the
// bench harness's results regenerable.

#include <gtest/gtest.h>

#include <memory>

#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/synthetic.h"

namespace sketchml {
namespace {

TEST(DeterminismTest, CodecBytesAreIdenticalAcrossInstances) {
  common::SparseGradient grad;
  common::Rng rng(443);
  uint64_t key = 0;
  for (int i = 0; i < 2000; ++i) {
    key += 1 + rng.NextBounded(30);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  for (const auto& name : core::KnownCodecNames()) {
    auto a = std::move(core::MakeCodec(name)).value();
    auto b = std::move(core::MakeCodec(name)).value();
    compress::EncodedGradient msg_a, msg_b;
    ASSERT_TRUE(a->Encode(grad, &msg_a).ok()) << name;
    ASSERT_TRUE(b->Encode(grad, &msg_b).ok()) << name;
    EXPECT_EQ(msg_a.bytes, msg_b.bytes) << name;
  }
}

TEST(DeterminismTest, SuccessiveEncodesDifferOnlyWhereSeeded) {
  // SketchML reseeds its hash functions per message (deterministically),
  // so encoding the same gradient twice from one instance gives two
  // different-but-valid messages; a fresh instance replays the sequence.
  common::SparseGradient grad;
  common::Rng rng(449);
  uint64_t key = 0;
  for (int i = 0; i < 1000; ++i) {
    key += 1 + rng.NextBounded(30);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  core::SketchMlCodec first, second;
  compress::EncodedGradient f1, f2, s1, s2;
  ASSERT_TRUE(first.Encode(grad, &f1).ok());
  ASSERT_TRUE(first.Encode(grad, &f2).ok());
  ASSERT_TRUE(second.Encode(grad, &s1).ok());
  ASSERT_TRUE(second.Encode(grad, &s2).ok());
  EXPECT_NE(f1.bytes, f2.bytes);  // Per-message reseeding.
  EXPECT_EQ(f1.bytes, s1.bytes);  // Replayable sequence.
  EXPECT_EQ(f2.bytes, s2.bytes);
}

TEST(DeterminismTest, TrainerBytesAndLossesReplay) {
  ml::SyntheticConfig config;
  config.num_instances = 1200;
  config.dim = 1 << 13;
  config.seed = 457;
  ml::Dataset all = ml::GenerateSynthetic(config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  auto run = [&](int epochs) {
    dist::ClusterConfig cluster;
    cluster.num_workers = 3;
    dist::TrainerConfig trainer_config;
    trainer_config.learning_rate = 0.05;
    trainer_config.adam_epsilon = 0.01;
    dist::DistributedTrainer trainer(
        &train, &test, loss.get(),
        std::move(core::MakeCodec("sketchml")).value(), cluster,
        trainer_config);
    auto stats = trainer.Run(epochs);
    EXPECT_TRUE(stats.ok());
    return std::move(stats).value();
  };
  const auto a = run(3);
  const auto b = run(3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    // Bytes and losses are exactly deterministic; only measured CPU
    // seconds vary between runs.
    EXPECT_EQ(a[e].bytes_up, b[e].bytes_up);
    EXPECT_EQ(a[e].bytes_down, b[e].bytes_down);
    EXPECT_DOUBLE_EQ(a[e].train_loss, b[e].train_loss);
    EXPECT_DOUBLE_EQ(a[e].test_loss, b[e].test_loss);
  }
}

TEST(DeterminismTest, FullWidthGroupHandlesTopBucket) {
  // q = 256, r = 1: group width 256 means local index 255 collides with
  // the kEmpty init value; verify the documented clamp behaviour.
  sketch::GroupedMinMaxSketch sketch(256, 1, 2, 1 << 12, 7);
  sketch.Insert(1, 255);
  sketch.Insert(2, 0);
  sketch.Insert(3, 254);
  EXPECT_EQ(sketch.Query(1, 0), 255);  // Untouched bins read as 255.
  EXPECT_EQ(sketch.Query(2, 0), 0);
  EXPECT_EQ(sketch.Query(3, 0), 254);
}

}  // namespace
}  // namespace sketchml
