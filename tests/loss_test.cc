#include "ml/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sketchml::ml {
namespace {

// Numerical derivative of the point loss w.r.t. the margin.
double NumericGradient(const Loss& loss, double margin, double label) {
  const double h = 1e-6;
  return (loss.PointLoss(margin + h, label) -
          loss.PointLoss(margin - h, label)) /
         (2 * h);
}

class LossGradientTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LossGradientTest, AnalyticMatchesNumeric) {
  auto loss = MakeLoss(GetParam());
  ASSERT_NE(loss, nullptr);
  for (double label : {-1.0, 1.0}) {
    for (double margin : {-3.0, -0.5, -0.1, 0.1, 0.7, 2.5}) {
      // Skip the hinge kink at y*m == 1.
      if (GetParam() == "svm" && std::abs(label * margin - 1.0) < 1e-3) {
        continue;
      }
      EXPECT_NEAR(loss->PointGradientScale(margin, label),
                  NumericGradient(*loss, margin, label), 1e-4)
          << GetParam() << " margin=" << margin << " label=" << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, LossGradientTest,
                         ::testing::Values("lr", "svm", "linear"));

TEST(LogisticLossTest, KnownValues) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.PointLoss(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.PointGradientScale(0.0, 1.0), -0.5, 1e-12);
  // Confident correct prediction: near-zero loss and gradient.
  EXPECT_LT(loss.PointLoss(10.0, 1.0), 1e-4);
  EXPECT_GT(loss.PointGradientScale(-10.0, 1.0), -1.0 - 1e-9);
}

TEST(LogisticLossTest, NumericallyStableAtExtremeMargins) {
  LogisticLoss loss;
  EXPECT_TRUE(std::isfinite(loss.PointLoss(-1000.0, 1.0)));
  EXPECT_TRUE(std::isfinite(loss.PointGradientScale(-1000.0, 1.0)));
  EXPECT_NEAR(loss.PointLoss(-1000.0, 1.0), 1000.0, 1e-6);
}

TEST(HingeLossTest, KnownValues) {
  HingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.PointLoss(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(loss.PointLoss(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.PointLoss(-1.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss.PointGradientScale(0.5, 1.0), -1.0);
  EXPECT_DOUBLE_EQ(loss.PointGradientScale(1.5, 1.0), 0.0);
}

TEST(SquaredLossTest, KnownValues) {
  SquaredLoss loss;
  EXPECT_DOUBLE_EQ(loss.PointLoss(0.5, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(loss.PointGradientScale(0.5, 1.0), -1.0);
  EXPECT_DOUBLE_EQ(loss.PointGradientScale(1.0, 1.0), 0.0);
}

TEST(MakeLossTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeLoss("resnet"), nullptr);
}

TEST(MakeLossTest, NamesMatchPaper) {
  EXPECT_EQ(MakeLoss("lr")->Name(), "LR");
  EXPECT_EQ(MakeLoss("svm")->Name(), "SVM");
  EXPECT_EQ(MakeLoss("linear")->Name(), "Linear");
}

}  // namespace
}  // namespace sketchml::ml
