#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace sketchml::common {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(JsonValue::Parse("null")->type(), JsonValue::Type::kNull);
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_FALSE(JsonValue::Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-12.5e2")->number_value(), -1250.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->string_value(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto parsed = JsonValue::Parse(
      R"({"a":[1,2,{"b":"x"}],"c":{"d":null},"e":3})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items()[0].number_value(), 1.0);
  EXPECT_EQ(a->array_items()[2].StringOr("b", ""), "x");
  EXPECT_DOUBLE_EQ(root.NumberOr("e", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(root.NumberOr("missing", -1.0), -1.0);
}

TEST(JsonTest, ObjectItemsPreserveDocumentOrder) {
  auto parsed = JsonValue::Parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(parsed.ok());
  const auto& items = parsed->object_items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "m");
}

TEST(JsonTest, DecodesEscapes) {
  auto parsed = JsonValue::Parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\"b\\c\nd\x41");
}

TEST(JsonTest, DecodesUnicodeEscapeToUtf8) {
  auto parsed = JsonValue::Parse("\"\\u00e9\"");  // e-acute.
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,2,]").ok());     // Trailing comma.
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());        // Bare word.
  EXPECT_FALSE(JsonValue::Parse("NaN").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());        // Trailing content.
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());  // Missing colon.
  EXPECT_FALSE(JsonValue::Parse("1.2.3").ok());      // Malformed number.
}

TEST(JsonTest, FindOnNonObjectReturnsNull) {
  auto parsed = JsonValue::Parse("[1,2]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("a"), nullptr);
}

TEST(JsonTest, TypedLookupsCoverWrongTypes) {
  auto parsed = JsonValue::Parse(R"({"s":"x","n":5})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->NumberOr("s", -1.0), -1.0);  // Wrong type.
  EXPECT_EQ(parsed->StringOr("n", "dflt"), "dflt");
  EXPECT_EQ(parsed->StringOr("s", ""), "x");
}

TEST(JsonTest, RoundTripsMetricsSamplerShapes) {
  // The exact shapes the sampler emits must stay parseable.
  const std::string header =
      R"({"type":"run","schema":1,"git_sha":"abc123","start_unix_ms":1,)"
      R"("meta":{"codec":"sketchml","workers":"4"}})";
  auto run = JsonValue::Parse(header);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->StringOr("type", ""), "run");
  EXPECT_EQ(run->Find("meta")->StringOr("workers", ""), "4");

  const std::string sample =
      R"({"type":"sample","t_ns":123,"reason":"epoch",)"
      R"("dropped_trace_events":0,)"
      R"("counters":{"trainer/compute_seconds":0.125,)"
      R"("trainer/worker_seconds{worker=0,phase=compute}":0.0625},)"
      R"("gauges":{"trainer/train_loss":0.69},)"
      R"("histograms":{"codec/encode_ns{codec=raw}":)"
      R"({"count":10,"sum":1000,"min":50,"max":200,)"
      R"("p50":100,"p95":190,"p99":199}}})";
  auto parsed = JsonValue::Parse(sample);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(
      counters->NumberOr("trainer/worker_seconds{worker=0,phase=compute}",
                         0.0),
      0.0625);
}

}  // namespace
}  // namespace sketchml::common
