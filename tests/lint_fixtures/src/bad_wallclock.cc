// Golden fixture: sketchml-wallclock violations.
// Expected: 2 violations (lines marked VIOLATION).
#include <chrono>

namespace sketchml::fixture {

double SecondsSinceEpoch() {
  const auto now = std::chrono::system_clock::now();  // VIOLATION.
  const auto mono = std::chrono::steady_clock::now();  // VIOLATION.
  (void)mono;
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace sketchml::fixture
