// Golden fixture: sketchml-nolint-justification clean file.
// Expected: 0 violations. Every suppression names its rule(s) and
// carries a ': <why>' justification; prose that merely mentions a
// marker mid-comment is not a suppression and is not audited.
#include <chrono>

namespace sketchml::fixture {

// Dropping a NOLINT into running prose like this must not be audited.
double Good() {
  // NOLINTNEXTLINE(sketchml-wallclock): fixture-exercised escape hatch.
  const auto now = std::chrono::steady_clock::now();
  // NOLINTNEXTLINE(sketchml-wallclock, sketchml-banned-random): multi-rule.
  const auto later = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(later - now).count();
}

}  // namespace sketchml::fixture
