// Golden fixture: sketchml-trace-category clean file. Allowlisted
// literals pass in every call shape (including the literal on the line
// after a wrapped open paren); type uses of TraceSpan, non-span emplace
// receivers, and mentions inside comments or strings never match; a
// justified category experiment uses NOLINT.
#include <map>
#include <optional>
#include <string>

#include "common/trace.h"

namespace sketchml::fixture {

// A comment about TraceSpan("bogus", ...) does not trip the rule.
void RecordSpans(uint64_t now) {
  obs::TraceSpan span("trainer", "epoch");
  obs::EmitSpan("network", "transfer", now, 1000);
  obs::EmitSpan(
      "codec", "encode/sketchml", now, 250);
  obs::EmitSpanWithParent("test", "synthetic", now, 500, obs::SpanContext{});

  std::optional<obs::TraceSpan> batch_span;  // Type use: no category here.
  batch_span.emplace("bench", "batch");

  std::map<std::string, int> counts;
  counts.emplace("gradients", 1);  // Non-span receiver: not a category.

  const std::string doc = "EmitSpan(\"bogus\", ...) inside a string literal";
  (void)doc;

  // NOLINTNEXTLINE(sketchml-trace-category): experiment-local category.
  obs::TraceSpan experiment("scratch", "probe");
}

void Consume(const obs::TraceSpan& span);  // Parameter use: no category.

}  // namespace sketchml::fixture
