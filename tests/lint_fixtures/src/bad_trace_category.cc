// Golden fixture: sketchml-trace-category violations.
// Expected: 4 violations (lines marked VIOLATION).
#include <optional>
#include <string>

#include "common/trace.h"

namespace sketchml::fixture {

void RecordSpans(const char* dynamic_category, uint64_t now) {
  obs::TraceSpan span("gradients", "encode");        // VIOLATION: unknown category.
  obs::EmitSpan(dynamic_category, "transfer",        // VIOLATION: not a literal.
                now, 1000);
  obs::EmitSpanWithParent("net", "retry", now, 500,  // VIOLATION: unknown category.
                          obs::SpanContext{});
  std::optional<obs::TraceSpan> batch_span;
  batch_span.emplace("batches", "batch");            // VIOLATION: unknown category.
}

}  // namespace sketchml::fixture
