// Golden fixture: sketchml-naked-new clean file.
// Expected: 0 violations. make_unique, `= delete`, and identifiers
// containing "new"/"delete" as substrings must not match.
#include <memory>

namespace sketchml::fixture {

struct Node {
  int value = 0;

  Node() = default;
  Node(const Node&) = delete;  // Deleted special member: no match.
  Node& operator=(const Node&) = delete;
};

int Owned() {
  auto node = std::make_unique<Node>();
  const int newest = node->value;  // "new" inside an identifier: no match.
  // NOLINTNEXTLINE(sketchml-naked-new): fixture-exercised escape hatch.
  Node* raw = new Node;
  const int v = raw->value;
  delete raw;  // NOLINT(sketchml-naked-new): paired with the new above.
  return newest + v;
}

}  // namespace sketchml::fixture
