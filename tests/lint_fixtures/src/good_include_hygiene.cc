// Golden fixture: sketchml-include-hygiene clean file.
// Expected: 0 violations — own header first, standard headers after.
#include "good_include_hygiene.h"

#include <vector>

namespace sketchml::fixture {

int Size(const std::vector<int>& v) { return static_cast<int>(v.size()); }

}  // namespace sketchml::fixture
