// Golden fixture: sketchml-stdout violations (src/ scope).
// Expected: 2 violations (lines marked VIOLATION).
#include <cstdio>
#include <iostream>

namespace sketchml::fixture {

void Chatty(int value) {
  std::cout << "value = " << value << "\n";  // VIOLATION: cout in library.
  printf("value = %d\n", value);             // VIOLATION: printf in library.
}

}  // namespace sketchml::fixture
