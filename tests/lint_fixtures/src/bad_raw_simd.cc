// Golden fixture: sketchml-raw-simd violations (intrinsics outside the
// src/common/simd* dispatch seam).
#include <immintrin.h>

namespace sketchml::fixture {

double SumLanes(const double* p) {
  __m256d v = _mm256_loadu_pd(p);  // VIOLATION: raw intrinsic use.
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);  // VIOLATION: raw intrinsic use.
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace sketchml::fixture
