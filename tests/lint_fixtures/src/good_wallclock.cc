// Golden fixture: sketchml-wallclock clean file.
// Expected: 0 violations. NOLINT and NOLINTNEXTLINE suppress the rule;
// mentions inside comments and strings never match.
#include <chrono>
#include <string>

namespace sketchml::fixture {

// A comment about std::chrono::system_clock does not trip the rule.
double JustifiedClockRead() {
  // NOLINTNEXTLINE(sketchml-wallclock): fixture-exercised escape hatch.
  const auto now = std::chrono::system_clock::now();
  // NOLINTNEXTLINE(sketchml-wallclock): fixture-exercised escape hatch.
  const auto mono = std::chrono::steady_clock::now();
  const std::string doc = "steady_clock inside a string literal";
  (void)doc;
  (void)mono;
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace sketchml::fixture
