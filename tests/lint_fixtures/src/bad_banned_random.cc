// Golden fixture: sketchml-banned-random violations.
// Expected: 3 violations (lines marked VIOLATION).
#include <cstdlib>
#include <ctime>
#include <random>

namespace sketchml::fixture {

int NondeterministicDraw() {
  std::random_device rd;          // VIOLATION: nondeterministic seed.
  srand(time(nullptr));           // VIOLATION x2: srand and time().
  return static_cast<int>(rd());
}

}  // namespace sketchml::fixture
