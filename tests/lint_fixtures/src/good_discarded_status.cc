// Golden fixture: sketchml-discarded-status clean file.
// Expected: 0 violations.
#include "compress/codec.h"

#include "common/status.h"

namespace sketchml::fixture {

common::Status HandleStatus(compress::GradientCodec* codec,
                            const common::SparseGradient& grad,
                            compress::EncodedGradient* out,
                            common::SparseGradient* decoded) {
  SKETCHML_RETURN_IF_ERROR(codec->Encode(grad, out));
  const common::Status status = codec->Decode(*out, decoded);
  if (!status.ok()) return status;
  // Justified discard: the fuzz contract only requires "no crash".
  // NOLINTNEXTLINE(sketchml-discarded-status): round-trip already checked.
  (void)codec->Decode(*out, decoded);
  return common::Status::Ok();
}

}  // namespace sketchml::fixture
