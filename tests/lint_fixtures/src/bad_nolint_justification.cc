// Golden fixture: sketchml-nolint-justification violations.
// Expected: 4 violations (lines 10, 11, 13, 15). The bare markers on 10
// and 11 genuinely suppress their line's wallclock violation — which is
// exactly the unexplained escape the audit exists to catch.
#include <chrono>

namespace sketchml::fixture {

double Bad() {
  const auto a = std::chrono::steady_clock::now();  // NOLINT
  // NOLINTNEXTLINE
  const auto b = std::chrono::steady_clock::now();
  const int unused = 0;  // NOLINT(): empty list, a reason alone is not enough
  const auto c = a - b;
  // NOLINT(sketchml-wallclock) named rule but no justification
  (void)unused;
  return std::chrono::duration<double>(c).count();
}

}  // namespace sketchml::fixture
