// Golden fixture: sketchml-raw-simd clean file. Batch code calls the
// dispatch seam; near-miss identifiers with an identifier character
// before the prefix do not match; a justified escape hatch uses NOLINT.
#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace sketchml::fixture {

size_t x_mm256_lookalike = 0;  // Ident char on the left: not a match.

size_t Buckets(const double* splits, size_t num_splits, const double* values,
               size_t count, uint16_t* out) {
  return common::simd::BucketSearch(splits, num_splits, values, count, out);
}

// NOLINTNEXTLINE(sketchml-raw-simd): name-alike in a stub declaration.
struct __m256_stub;

}  // namespace sketchml::fixture
