// Golden fixture: sketchml-discarded-status violations.
// Expected: 2 violations (lines marked VIOLATION).
#include "compress/codec.h"

namespace sketchml::fixture {

void DropStatus(compress::GradientCodec* codec,
                const common::SparseGradient& grad,
                compress::EncodedGradient* out,
                common::SparseGradient* decoded) {
  codec->Encode(grad, out);          // VIOLATION: bare-statement call.
  (void)codec->Decode(*out, decoded);  // VIOLATION: unjustified (void).
}

}  // namespace sketchml::fixture
