// Golden fixture: sketchml-naked-new violations (src/ scope).
// Expected: 2 violations (lines marked VIOLATION).

namespace sketchml::fixture {

struct Node {
  int value = 0;
};

int Leaky() {
  Node* node = new Node;  // VIOLATION: naked new.
  const int v = node->value;
  delete node;  // VIOLATION: naked delete.
  return v;
}

}  // namespace sketchml::fixture
