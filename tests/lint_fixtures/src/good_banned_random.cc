// Golden fixture: sketchml-banned-random clean file.
// Expected: 0 violations. Identifiers containing the banned tokens as
// substrings (runtime, times, randomize) must not match.
#include <cstdint>
#include <random>

namespace sketchml::fixture {

uint64_t DeterministicDraw(uint64_t seed) {
  std::mt19937_64 rng(seed);  // Seeded engines are fine; seeding isn't.
  const uint64_t runtime_ns = 0;  // "time" inside an identifier: no match.
  const int times = 3;            // Ditto.
  uint64_t randomized = rng();    // "rand" inside an identifier: no match.
  return randomized + runtime_ns + static_cast<uint64_t>(times);
}

}  // namespace sketchml::fixture
