// Golden fixture: sketchml-stdout clean file.
// Expected: 0 violations. snprintf/fprintf(stderr) are allowed (word
// boundaries keep them from matching printf), as is logging.
#include <cstdio>

#include "common/logging.h"

namespace sketchml::fixture {

void Quiet(int value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", value);  // Not printf: no match.
  std::fprintf(stderr, "%s\n", buf);             // stderr is fine.
  SKETCHML_LOG(Info) << "value = " << value;
}

}  // namespace sketchml::fixture
