// Golden fixture: sketchml-include-hygiene violations.
// Fixture path models src/bad_include_hygiene.cc whose own header is
// "bad_include_hygiene.h" — included, but not first.
// Expected: 2 violations (lines marked VIOLATION).
#include <vector>  // VIOLATION: before the own header.
#include <bits/stdc++.h>  // VIOLATION: libstdc++ internal header.
#include "bad_include_hygiene.h"

namespace sketchml::fixture {

int Size(const std::vector<int>& v) { return static_cast<int>(v.size()); }

}  // namespace sketchml::fixture
