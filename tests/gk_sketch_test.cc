#include "sketch/gk_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace sketchml::sketch {
namespace {

// True rank (0-based fraction) of `value` within sorted `data`.
double TrueRankFraction(const std::vector<double>& sorted, double value) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) / sorted.size();
}

TEST(GkSketchTest, ExactOnTinyStream) {
  GkSketch sketch(0.01);
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) sketch.Update(v);
  EXPECT_EQ(sketch.Count(), 5u);
  EXPECT_DOUBLE_EQ(sketch.Min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Max(), 5.0);
  EXPECT_NEAR(sketch.Quantile(0.5), 3.0, 1.0);
}

TEST(GkSketchTest, RejectsBadEpsilon) {
  EXPECT_DEATH(GkSketch(0.0), "");
  EXPECT_DEATH(GkSketch(0.5), "");
}

class GkSketchErrorTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GkSketchErrorTest, RankErrorWithinEpsilon) {
  const double epsilon = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  GkSketch sketch(epsilon);
  common::Rng rng(17);
  std::vector<double> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    data.push_back(v);
    sketch.Update(v);
  }
  std::sort(data.begin(), data.end());

  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double estimate = sketch.Quantile(q);
    const double actual_rank = TrueRankFraction(data, estimate);
    // Allow 3x the nominal epsilon: our simplified query picks the tuple
    // with the closest band midpoint rather than solving the LP exactly.
    EXPECT_NEAR(actual_rank, q, 3.0 * epsilon + 2.0 / n)
        << "q=" << q << " eps=" << epsilon << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GkSketchErrorTest,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05),
                       ::testing::Values(1000, 20000, 100000)));

TEST(GkSketchTest, SpaceStaysSublinear) {
  GkSketch sketch(0.01);
  common::Rng rng(23);
  for (int i = 0; i < 200000; ++i) sketch.Update(rng.NextDouble());
  // 1/eps * log(eps * n) ~ 100 * log(2000) ~ 760; generous bound.
  EXPECT_LT(sketch.NumTuples(), 6000u);
}

TEST(GkSketchTest, MinMaxExactUnderCompression) {
  GkSketch sketch(0.05);
  common::Rng rng(29);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextUniform(-7.0, 11.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sketch.Update(v);
  }
  EXPECT_DOUBLE_EQ(sketch.Min(), lo);
  EXPECT_DOUBLE_EQ(sketch.Max(), hi);
}

TEST(GkSketchTest, SortedAndReverseSortedInput) {
  for (bool reverse : {false, true}) {
    GkSketch sketch(0.01);
    for (int i = 0; i < 10000; ++i) {
      sketch.Update(reverse ? 10000 - i : i);
    }
    EXPECT_NEAR(sketch.Quantile(0.5), 5000.0, 400.0);
    EXPECT_NEAR(sketch.Quantile(0.9), 9000.0, 400.0);
  }
}

TEST(GkSketchTest, ConstantStream) {
  GkSketch sketch(0.01);
  for (int i = 0; i < 1000; ++i) sketch.Update(3.14);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 3.14);
  EXPECT_DOUBLE_EQ(sketch.Min(), 3.14);
  EXPECT_DOUBLE_EQ(sketch.Max(), 3.14);
}

TEST(GkSketchTest, QuantileClampsQ) {
  GkSketch sketch(0.01);
  for (int i = 1; i <= 100; ++i) sketch.Update(i);
  EXPECT_DOUBLE_EQ(sketch.Quantile(-0.5), sketch.Quantile(0.0));
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.5), sketch.Quantile(1.0));
}

}  // namespace
}  // namespace sketchml::sketch
