#include "compress/delta_binary_key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/byte_buffer.h"
#include "common/random.h"

namespace sketchml::compress {
namespace {

std::vector<uint64_t> RandomSortedKeys(size_t count, uint64_t dim,
                                       uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(dim));
  return {keys.begin(), keys.end()};
}

TEST(DeltaBinaryKeyCodecTest, PaperExampleRoundTrips) {
  // The key list from Figure 7.
  std::vector<uint64_t> keys = {702, 735, 1244, 2516, 3536, 3786, 4187, 4195};
  common::ByteWriter writer;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Decode(&reader, &decoded).ok());
  EXPECT_EQ(decoded, keys);
  // Deltas: 702,33,509,1272,1020,250,401,8 -> widths 2,1,2,2,2,1,2,1 = 13
  // bytes + 2 flag bytes + 1 count byte = 16.
  EXPECT_EQ(writer.size(), 16u);
}

TEST(DeltaBinaryKeyCodecTest, EmptyKeyList) {
  common::ByteWriter writer;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Encode({}, &writer).ok());
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded = {1, 2, 3};
  ASSERT_TRUE(DeltaBinaryKeyCodec::Decode(&reader, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(DeltaBinaryKeyCodecTest, SingleKeyIncludingZero) {
  for (uint64_t key : {0ULL, 1ULL, 255ULL, 256ULL, 4294967295ULL}) {
    common::ByteWriter writer;
    ASSERT_TRUE(DeltaBinaryKeyCodec::Encode({key}, &writer).ok());
    common::ByteReader reader(writer.buffer());
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(DeltaBinaryKeyCodec::Decode(&reader, &decoded).ok());
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0], key);
  }
}

TEST(DeltaBinaryKeyCodecTest, RejectsUnsortedKeys) {
  common::ByteWriter writer;
  EXPECT_EQ(DeltaBinaryKeyCodec::Encode({5, 3}, &writer).code(),
            common::StatusCode::kInvalidArgument);
  common::ByteWriter writer2;
  EXPECT_EQ(DeltaBinaryKeyCodec::Encode({5, 5}, &writer2).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(DeltaBinaryKeyCodecTest, RejectsHugeDelta) {
  common::ByteWriter writer;
  EXPECT_EQ(DeltaBinaryKeyCodec::Encode({0, (1ULL << 33)}, &writer).code(),
            common::StatusCode::kOutOfRange);
}

TEST(DeltaBinaryKeyCodecTest, BoundaryDeltasUseMinimalWidth) {
  // Deltas exactly at the byte-width thresholds of §3.4.
  std::vector<uint64_t> keys = {255};            // 1 byte.
  keys.push_back(keys.back() + 256);             // 2 bytes.
  keys.push_back(keys.back() + 65535);           // 2 bytes.
  keys.push_back(keys.back() + 65536);           // 3 bytes.
  keys.push_back(keys.back() + 16777215);        // 3 bytes.
  keys.push_back(keys.back() + 16777216);        // 4 bytes.
  common::ByteWriter writer;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
  // 1 count + 2 flag bytes (6 keys) + 1+2+2+3+3+4 delta bytes = 18.
  EXPECT_EQ(writer.size(), 18u);
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Decode(&reader, &decoded).ok());
  EXPECT_EQ(decoded, keys);
}

TEST(DeltaBinaryKeyCodecTest, EncodedSizeMatchesActual) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto keys = RandomSortedKeys(500, 1 << 20, seed);
    common::ByteWriter writer;
    ASSERT_TRUE(DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
    EXPECT_EQ(DeltaBinaryKeyCodec::EncodedSize(keys), writer.size());
  }
}

TEST(DeltaBinaryKeyCodecTest, DecodeDetectsTruncation) {
  const auto keys = RandomSortedKeys(100, 1 << 16, 4);
  common::ByteWriter writer;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
  auto bytes = writer.buffer();
  bytes.resize(bytes.size() / 2);
  common::ByteReader reader(bytes.data(), bytes.size());
  std::vector<uint64_t> decoded;
  EXPECT_EQ(DeltaBinaryKeyCodec::Decode(&reader, &decoded).code(),
            common::StatusCode::kCorruptedData);
}

// Regression for the tightened count bound: a declared count small enough
// that `count <= remaining` but whose mandatory flag stream alone
// (ceil(count/4) bytes on top of >= 1 delta byte per key) cannot fit must
// be rejected before any allocation, not discovered mid-read.
TEST(DeltaBinaryKeyCodecTest, DecodeRejectsCountThatOnlyFitsWithoutFlags) {
  // count = 8 needs 8 delta bytes + 2 flag bytes = 10; give it exactly 8.
  common::ByteWriter writer;
  writer.WriteVarint(8);
  for (int i = 0; i < 8; ++i) writer.WriteU8(0x01);
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded;
  EXPECT_EQ(DeltaBinaryKeyCodec::Decode(&reader, &decoded).code(),
            common::StatusCode::kCorruptedData);

  // One extra byte short of the flag overhead still fails...
  common::ByteWriter writer2;
  writer2.WriteVarint(8);
  for (int i = 0; i < 9; ++i) writer2.WriteU8(0x01);
  common::ByteReader reader2(writer2.buffer());
  EXPECT_EQ(DeltaBinaryKeyCodec::Decode(&reader2, &decoded).code(),
            common::StatusCode::kCorruptedData);

  // ...while the exact minimum (2 flag bytes of all-"1-byte" symbols + 8
  // nonzero deltas) decodes.
  common::ByteWriter writer3;
  writer3.WriteVarint(8);
  writer3.WriteU8(0x00);
  writer3.WriteU8(0x00);
  for (int i = 0; i < 8; ++i) writer3.WriteU8(0x01);
  common::ByteReader reader3(writer3.buffer());
  ASSERT_TRUE(DeltaBinaryKeyCodec::Decode(&reader3, &decoded).ok());
  const std::vector<uint64_t> expected = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(decoded, expected);
}

class DeltaKeyDensityTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(DeltaKeyDensityTest, RoundTripsAndBeatsRawInts) {
  const size_t count = std::get<0>(GetParam());
  const uint64_t dim = std::get<1>(GetParam());
  const auto keys = RandomSortedKeys(count, dim, count ^ dim);
  common::ByteWriter writer;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Decode(&reader, &decoded).ok());
  EXPECT_EQ(decoded, keys);
  EXPECT_LT(writer.size(), keys.size() * 4);  // Beats 4-byte raw keys.
}

INSTANTIATE_TEST_SUITE_P(
    Densities, DeltaKeyDensityTest,
    ::testing::Values(std::make_tuple(100, 1000ULL),        // Dense.
                      std::make_tuple(1000, 100000ULL),     // 1 %.
                      std::make_tuple(1000, 10000000ULL),   // Sparse.
                      std::make_tuple(5000, 1ULL << 31)));  // Very sparse.

TEST(DeltaBinaryKeyCodecTest, DenseKeysApproachOneByteAndAQuarter) {
  // Appendix A.3: with average delta < 256 every key costs 1 delta byte +
  // 1/4 flag byte.
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 3;
  common::ByteWriter writer;
  ASSERT_TRUE(DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
  const double bytes_per_key =
      static_cast<double>(writer.size()) / keys.size();
  EXPECT_NEAR(bytes_per_key, 1.25, 0.01);
}

TEST(BitmapKeyCodecTest, RoundTrips) {
  const auto keys = RandomSortedKeys(200, 5000, 9);
  common::ByteWriter writer;
  ASSERT_TRUE(BitmapKeyCodec::Encode(keys, 5000, &writer).ok());
  EXPECT_EQ(writer.size(), BitmapKeyCodec::EncodedSize(5000));
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(BitmapKeyCodec::Decode(&reader, &decoded).ok());
  EXPECT_EQ(decoded, keys);
}

TEST(BitmapKeyCodecTest, RejectsKeyBeyondDim) {
  common::ByteWriter writer;
  EXPECT_EQ(BitmapKeyCodec::Encode({10}, 10, &writer).code(),
            common::StatusCode::kOutOfRange);
}

TEST(BitmapKeyCodecTest, EmptyBitmap) {
  common::ByteWriter writer;
  ASSERT_TRUE(BitmapKeyCodec::Encode({}, 100, &writer).ok());
  common::ByteReader reader(writer.buffer());
  std::vector<uint64_t> decoded = {1};
  ASSERT_TRUE(BitmapKeyCodec::Decode(&reader, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(BitmapKeyCodecTest, DeltaBeatsBitmapWhenSparse) {
  // A.3's conclusion: delta-binary wins for sparse gradients because the
  // bitmap pays ceil(D/8) regardless of d.
  const uint64_t dim = 1 << 24;
  const auto keys = RandomSortedKeys(1000, dim, 13);
  EXPECT_LT(DeltaBinaryKeyCodec::EncodedSize(keys),
            BitmapKeyCodec::EncodedSize(dim) / 100);
}

}  // namespace
}  // namespace sketchml::compress
