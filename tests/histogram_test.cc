#include "common/histogram.h"

#include <gtest/gtest.h>

namespace sketchml::common {
namespace {

TEST(HistogramTest, BinsValuesByRange) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 9
  h.Add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.BinLow(0), -1.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), -0.5);
  EXPECT_DOUBLE_EQ(h.BinLow(3), 0.5);
  EXPECT_DOUBLE_EQ(h.BinHigh(3), 1.0);
}

TEST(HistogramTest, AddAllAndAscii) {
  Histogram h(0.0, 4.0, 4);
  h.AddAll({0.5, 1.5, 1.6, 2.5, 3.5, 3.6, 3.7});
  EXPECT_EQ(h.total(), 7u);
  const std::string art = h.ToAscii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  // Four lines, one per bin.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(HistogramTest, ValueOnBoundaryGoesToUpperBin) {
  Histogram h(0.0, 2.0, 2);
  h.Add(1.0);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(0), 0u);
}

}  // namespace
}  // namespace sketchml::common
