#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_sampler.h"
#include "common/obs.h"
#include "common/thread_pool.h"

namespace sketchml::obs {
namespace {

/// Enables metrics for the duration of a test and restores the previous
/// state (tests may run under SKETCHML_OBS presets with either setting).
class ScopedMetrics {
 public:
  ScopedMetrics() : was_enabled_(MetricsEnabled()) {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().Reset();
  }
  ~ScopedMetrics() {
    MetricsRegistry::Global().Reset();
    SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(MetricsRegistryTest, CounterAccumulates) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/counter");
  c.Add(2.5);
  c.Increment();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/counter"),
      3.5);
}

TEST(MetricsRegistryTest, SameNameSameSlot) {
  ScopedMetrics scoped;
  Counter a = MetricsRegistry::Global().GetCounter("test/shared");
  Counter b = MetricsRegistry::Global().GetCounter("test/shared");
  a.Increment();
  b.Increment();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/shared"),
      2.0);
}

TEST(MetricsRegistryTest, DisabledRecordingIsDropped) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/gated");
  SetMetricsEnabled(false);
  c.Add(100.0);
  SetMetricsEnabled(true);
  c.Add(1.0);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/gated"), 1.0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  ScopedMetrics scoped;
  Gauge g = MetricsRegistry::Global().GetGauge("test/gauge");
  g.Set(7.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().GaugeValueOf("test/gauge"), 5.0);
}

TEST(MetricsRegistryTest, HistogramStatsAndBuckets) {
  ScopedMetrics scoped;
  Histogram h = MetricsRegistry::Global().GetHistogram("test/hist");
  h.Record(0.5);   // Bucket 0: < 1.
  h.Record(1.0);   // Bucket 1: [1, 2).
  h.Record(3.0);   // Bucket 2: [2, 4).
  h.Record(100.0); // Bucket 7: [64, 128).
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 4u);
  EXPECT_DOUBLE_EQ(hist->sum, 104.5);
  EXPECT_DOUBLE_EQ(hist->min, 0.5);
  EXPECT_DOUBLE_EQ(hist->max, 100.0);
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[2], 1u);
  EXPECT_EQ(hist->buckets[7], 1u);
}

TEST(MetricsRegistryTest, HistogramExtremeValuesLandInEdgeBuckets) {
  ScopedMetrics scoped;
  Histogram h = MetricsRegistry::Global().GetHistogram("test/edges");
  h.Record(-5.0);
  h.Record(std::nan(""));
  h.Record(1e19);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/edges");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[kHistogramBuckets - 1], 1u);
}

TEST(MetricsRegistryTest, AggregatesAcrossPoolThreads) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/cross_thread");
  common::ThreadPool pool(4);
  std::vector<common::TaskFuture<void>> tasks;
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 100;
  tasks.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back(pool.Submit([c] {
      for (int i = 0; i < kAddsPerTask; ++i) c.Increment();
    }));
  }
  for (auto& task : tasks) task.Get();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/cross_thread"),
      static_cast<double>(kTasks * kAddsPerTask));
}

TEST(MetricsRegistryTest, ExitedThreadTotalsAreRetained) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/retired");
  std::thread worker([c] { c.Add(42.0); });
  worker.join();
  // The shard died with the thread; its total must survive in the
  // registry's retired accumulator.
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/retired"),
      42.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/reset");
  c.Add(9.0);
  MetricsRegistry::Global().Reset();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("test/reset"), 0.0);
  c.Add(1.0);  // Handle still valid after Reset.
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/reset"), 1.0);
}

TEST(MetricsRegistryTest, JsonlSkipsZeroCountersAndEscapesNames) {
  ScopedMetrics scoped;
  MetricsRegistry::Global().GetCounter("test/zero");
  Counter c = MetricsRegistry::Global().GetCounter("test/\"quoted\"");
  c.Add(1.0);
  std::ostringstream out;
  MetricsRegistry::Global().Snapshot().WriteJsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("test/zero"), std::string::npos);
  EXPECT_NE(text.find("test/\\\"quoted\\\""), std::string::npos);
}

TEST(MetricsRegistryTest, DefaultHandleIsInert) {
  ScopedMetrics scoped;
  Counter c;  // Never registered.
  c.Add(5.0);
  Histogram h;
  h.Record(1.0);
  Gauge g;
  g.Set(3.0);  // Nothing to assert beyond "does not crash".
}

TEST(MetricLabelsTest, LabeledNameRoundTrips) {
  const MetricLabels labels{{"worker", "3"}, {"phase", "encode"}};
  const std::string name = LabeledName("trainer/worker_seconds", labels);
  EXPECT_EQ(name, "trainer/worker_seconds{worker=3,phase=encode}");
  const ParsedMetricName parsed = ParseMetricName(name);
  EXPECT_EQ(parsed.base, "trainer/worker_seconds");
  EXPECT_EQ(parsed.labels, labels);
}

TEST(MetricLabelsTest, PlainNameParsesWithoutLabels) {
  EXPECT_EQ(LabeledName("trainer/epochs", {}), "trainer/epochs");
  const ParsedMetricName parsed = ParseMetricName("trainer/epochs");
  EXPECT_EQ(parsed.base, "trainer/epochs");
  EXPECT_TRUE(parsed.labels.empty());
}

TEST(MetricLabelsTest, LabelValueAndSubsetMatch) {
  const MetricLabels have{{"codec", "sketchml"}, {"worker", "1"}};
  EXPECT_EQ(LabelValue(have, "codec"), "sketchml");
  EXPECT_EQ(LabelValue(have, "missing"), "");
  EXPECT_TRUE(LabelsMatch(have, {}));
  EXPECT_TRUE(LabelsMatch(have, {{"worker", "1"}}));
  EXPECT_TRUE(LabelsMatch(have, {{"worker", "1"}, {"codec", "sketchml"}}));
  EXPECT_FALSE(LabelsMatch(have, {{"worker", "2"}}));
  EXPECT_FALSE(LabelsMatch(have, {{"server", "0"}}));
}

TEST(MetricsRegistryTest, LabeledCountersAreDistinctSlots) {
  ScopedMetrics scoped;
  auto& registry = MetricsRegistry::Global();
  Counter w0 = registry.GetCounter("test/labeled", {{"worker", "0"}});
  Counter w1 = registry.GetCounter("test/labeled", {{"worker", "1"}});
  Counter plain = registry.GetCounter("test/labeled");
  w0.Add(1.0);
  w1.Add(2.0);
  plain.Add(4.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("test/labeled{worker=0}"), 1.0);
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("test/labeled{worker=1}"), 2.0);
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("test/labeled"), 4.0);
}

TEST(MetricsRegistryTest, SumCountersRollsUpLabelSubsets) {
  ScopedMetrics scoped;
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test/roll", {{"worker", "0"}, {"phase", "a"}})
      .Add(1.0);
  registry.GetCounter("test/roll", {{"worker", "0"}, {"phase", "b"}})
      .Add(2.0);
  registry.GetCounter("test/roll", {{"worker", "1"}, {"phase", "a"}})
      .Add(4.0);
  registry.GetCounter("test/roll").Add(8.0);
  // A name sharing the prefix but with a longer base must not match.
  registry.GetCounter("test/rollover").Add(100.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.SumCounters("test/roll", {}), 15.0);
  EXPECT_DOUBLE_EQ(snap.SumCounters("test/roll", {{"phase", "a"}}), 5.0);
  EXPECT_DOUBLE_EQ(snap.SumCounters("test/roll", {{"worker", "0"}}), 3.0);
  EXPECT_DOUBLE_EQ(
      snap.SumCounters("test/roll", {{"worker", "1"}, {"phase", "a"}}), 4.0);
  EXPECT_DOUBLE_EQ(snap.SumCounters("test/roll", {{"worker", "9"}}), 0.0);
}

TEST(MetricsRegistryTest, LabeledJsonlCarriesParsedLabels) {
  ScopedMetrics scoped;
  MetricsRegistry::Global()
      .GetCounter("test/jl", {{"codec", "sketchml"}, {"worker", "2"}})
      .Add(1.0);
  std::ostringstream out;
  MetricsRegistry::Global().Snapshot().WriteJsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\":\"test/jl{codec=sketchml,worker=2}\""),
            std::string::npos);
  EXPECT_NE(
      text.find("\"labels\":{\"codec\":\"sketchml\",\"worker\":\"2\"}"),
      std::string::npos);
}

TEST(MetricsRegistryTest, HistogramQuantilesInterpolateWithinBuckets) {
  ScopedMetrics scoped;
  Histogram h = MetricsRegistry::Global().GetHistogram("test/quant");
  // 100 values spread over [1, 100]: true p50 ~ 50, p99 ~ 99.
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/quant");
  ASSERT_NE(hist, nullptr);
  const double p50 = hist->P50();
  const double p99 = hist->P99();
  // Pow2 buckets bound the error to a factor of two.
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(p50, p99);
  // Quantiles clamp to the observed range.
  EXPECT_GE(hist->ValueAtQuantile(0.0), hist->min);
  EXPECT_DOUBLE_EQ(hist->ValueAtQuantile(1.0), hist->max);
  EXPECT_DOUBLE_EQ(hist->Mean(), 50.5);
}

TEST(MetricsRegistryTest, QuantileOfEmptyHistogramIsZero) {
  ScopedMetrics scoped;
  MetricsRegistry::Global().GetHistogram("test/empty_quant");
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/empty_quant");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->P50(), 0.0);
  EXPECT_DOUBLE_EQ(hist->P99(), 0.0);
  EXPECT_DOUBLE_EQ(hist->Mean(), 0.0);
}

TEST(MetricsRegistryTest, SingleValueHistogramQuantilesClampToValue) {
  ScopedMetrics scoped;
  Histogram h = MetricsRegistry::Global().GetHistogram("test/single");
  h.Record(1000.0);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/single");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->P50(), 1000.0);
  EXPECT_DOUBLE_EQ(hist->P95(), 1000.0);
  EXPECT_DOUBLE_EQ(hist->P99(), 1000.0);
}

TEST(PromExpositionTest, GoldenOutput) {
  // Hand-built snapshot so the expected text is exact and hermetic: label
  // mangling, per-family TYPE lines, cumulative buckets, and sketch
  // summaries all pinned at once.
  MetricsSnapshot snap;
  snap.counters.push_back({LabeledName("trainer/bytes_up",
                                       {{"worker", "3"}}), 5.0});
  snap.counters.push_back({LabeledName("trainer/bytes_up",
                                       {{"worker", "4"}}), 7.0});
  snap.counters.push_back({"test/zero", 0.0});  // Skipped: zero counter.
  snap.counters.push_back({"telemetry/merges", 2.0});
  snap.gauges.push_back({"trainer/train_loss", 0.5});
  snap.gauges.push_back({"trainer/p99-loss", 3.0});  // '-' mangles to '_'.

  MetricsSnapshot::HistogramValue hist;
  hist.name = LabeledName("codec/encode_ns", {{"codec", "sk"}});
  hist.count = 2;
  hist.sum = 4.0;
  hist.buckets[0] = 1;
  hist.buckets[2] = 1;
  snap.histograms.push_back(hist);
  snap.histograms.push_back({});  // Empty histogram: skipped.

  SketchHistogramSummary sketch;
  sketch.name = "trainer/compute_latency_seconds";
  sketch.count = 100;
  sketch.p50.value = 0.25;
  sketch.p90.value = 0.5;
  sketch.p99.value = 1.0;
  sketch.p999.value = 2.0;
  snap.sketches.push_back(sketch);
  snap.sketches.push_back({});  // Empty sketch: skipped.

  std::ostringstream out;
  WritePromExposition(snap, out);
  EXPECT_EQ(out.str(),
            "# TYPE sketchml_trainer_bytes_up counter\n"
            "sketchml_trainer_bytes_up{worker=\"3\"} 5\n"
            "sketchml_trainer_bytes_up{worker=\"4\"} 7\n"
            "# TYPE sketchml_telemetry_merges counter\n"
            "sketchml_telemetry_merges 2\n"
            "# TYPE sketchml_trainer_train_loss gauge\n"
            "sketchml_trainer_train_loss 0.5\n"
            "# TYPE sketchml_trainer_p99_loss gauge\n"
            "sketchml_trainer_p99_loss 3\n"
            "# TYPE sketchml_codec_encode_ns histogram\n"
            "sketchml_codec_encode_ns_bucket{codec=\"sk\",le=\"1\"} 1\n"
            "sketchml_codec_encode_ns_bucket{codec=\"sk\",le=\"4\"} 2\n"
            "sketchml_codec_encode_ns_bucket{codec=\"sk\",le=\"+Inf\"} 2\n"
            "sketchml_codec_encode_ns_sum{codec=\"sk\"} 4\n"
            "sketchml_codec_encode_ns_count{codec=\"sk\"} 2\n"
            "# TYPE sketchml_trainer_compute_latency_seconds summary\n"
            "sketchml_trainer_compute_latency_seconds{quantile=\"0.5\"} "
            "0.25\n"
            "sketchml_trainer_compute_latency_seconds{quantile=\"0.9\"} "
            "0.5\n"
            "sketchml_trainer_compute_latency_seconds{quantile=\"0.99\"} "
            "1\n"
            "sketchml_trainer_compute_latency_seconds{quantile=\"0.999\"} "
            "2\n"
            "sketchml_trainer_compute_latency_seconds_count 100\n");
}

TEST(PromExpositionTest, LabelValuesAreEscaped) {
  MetricsSnapshot snap;
  snap.counters.push_back(
      {LabeledName("test/esc", {{"path", "a\"b\\c"}}), 1.0});
  std::ostringstream out;
  WritePromExposition(snap, out);
  EXPECT_EQ(out.str(),
            "# TYPE sketchml_test_esc counter\n"
            "sketchml_test_esc{path=\"a\\\"b\\\\c\"} 1\n");
}

}  // namespace
}  // namespace sketchml::obs
