#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/obs.h"
#include "common/thread_pool.h"

namespace sketchml::obs {
namespace {

/// Enables metrics for the duration of a test and restores the previous
/// state (tests may run under SKETCHML_OBS presets with either setting).
class ScopedMetrics {
 public:
  ScopedMetrics() : was_enabled_(MetricsEnabled()) {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().Reset();
  }
  ~ScopedMetrics() {
    MetricsRegistry::Global().Reset();
    SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(MetricsRegistryTest, CounterAccumulates) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/counter");
  c.Add(2.5);
  c.Increment();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/counter"),
      3.5);
}

TEST(MetricsRegistryTest, SameNameSameSlot) {
  ScopedMetrics scoped;
  Counter a = MetricsRegistry::Global().GetCounter("test/shared");
  Counter b = MetricsRegistry::Global().GetCounter("test/shared");
  a.Increment();
  b.Increment();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/shared"),
      2.0);
}

TEST(MetricsRegistryTest, DisabledRecordingIsDropped) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/gated");
  SetMetricsEnabled(false);
  c.Add(100.0);
  SetMetricsEnabled(true);
  c.Add(1.0);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/gated"), 1.0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  ScopedMetrics scoped;
  Gauge g = MetricsRegistry::Global().GetGauge("test/gauge");
  g.Set(7.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().GaugeValueOf("test/gauge"), 5.0);
}

TEST(MetricsRegistryTest, HistogramStatsAndBuckets) {
  ScopedMetrics scoped;
  Histogram h = MetricsRegistry::Global().GetHistogram("test/hist");
  h.Record(0.5);   // Bucket 0: < 1.
  h.Record(1.0);   // Bucket 1: [1, 2).
  h.Record(3.0);   // Bucket 2: [2, 4).
  h.Record(100.0); // Bucket 7: [64, 128).
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 4u);
  EXPECT_DOUBLE_EQ(hist->sum, 104.5);
  EXPECT_DOUBLE_EQ(hist->min, 0.5);
  EXPECT_DOUBLE_EQ(hist->max, 100.0);
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[2], 1u);
  EXPECT_EQ(hist->buckets[7], 1u);
}

TEST(MetricsRegistryTest, HistogramExtremeValuesLandInEdgeBuckets) {
  ScopedMetrics scoped;
  Histogram h = MetricsRegistry::Global().GetHistogram("test/edges");
  h.Record(-5.0);
  h.Record(std::nan(""));
  h.Record(1e19);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* hist = snap.FindHistogram("test/edges");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[kHistogramBuckets - 1], 1u);
}

TEST(MetricsRegistryTest, AggregatesAcrossPoolThreads) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/cross_thread");
  common::ThreadPool pool(4);
  std::vector<common::TaskFuture<void>> tasks;
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 100;
  tasks.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back(pool.Submit([c] {
      for (int i = 0; i < kAddsPerTask; ++i) c.Increment();
    }));
  }
  for (auto& task : tasks) task.Get();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/cross_thread"),
      static_cast<double>(kTasks * kAddsPerTask));
}

TEST(MetricsRegistryTest, ExitedThreadTotalsAreRetained) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/retired");
  std::thread worker([c] { c.Add(42.0); });
  worker.join();
  // The shard died with the thread; its total must survive in the
  // registry's retired accumulator.
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/retired"),
      42.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  ScopedMetrics scoped;
  Counter c = MetricsRegistry::Global().GetCounter("test/reset");
  c.Add(9.0);
  MetricsRegistry::Global().Reset();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("test/reset"), 0.0);
  c.Add(1.0);  // Handle still valid after Reset.
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().Snapshot().CounterValueOf("test/reset"), 1.0);
}

TEST(MetricsRegistryTest, JsonlSkipsZeroCountersAndEscapesNames) {
  ScopedMetrics scoped;
  MetricsRegistry::Global().GetCounter("test/zero");
  Counter c = MetricsRegistry::Global().GetCounter("test/\"quoted\"");
  c.Add(1.0);
  std::ostringstream out;
  MetricsRegistry::Global().Snapshot().WriteJsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("test/zero"), std::string::npos);
  EXPECT_NE(text.find("test/\\\"quoted\\\""), std::string::npos);
}

TEST(MetricsRegistryTest, DefaultHandleIsInert) {
  ScopedMetrics scoped;
  Counter c;  // Never registered.
  c.Add(5.0);
  Histogram h;
  h.Record(1.0);
  Gauge g;
  g.Set(3.0);  // Nothing to assert beyond "does not crash".
}

}  // namespace
}  // namespace sketchml::obs
