#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sketchml::common {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Uniformity: each bin expects 10000; allow 10 % slack.
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(6);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.NextBernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, HeadIsMostPopular) {
  const double alpha = GetParam();
  ZipfSampler zipf(1000, alpha);
  Rng rng(8);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  // Item 0 beats item 100 by roughly (101)^alpha; just require dominance.
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[0], counts[999]);
  // Frequency of item 0 matches the analytic Zipf mass within 20 %.
  double norm = 0.0;
  for (int i = 1; i <= 1000; ++i) norm += 1.0 / std::pow(i, alpha);
  const double expected = 1.0 / norm;
  EXPECT_NEAR(counts[0] / 100000.0, expected, expected * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSamplerTest,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(ZipfSamplerTest, SingleItemAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace sketchml::common
