#include "dist/trainer.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/codec_factory.h"
#include "dist/network_model.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

struct Fixture {
  Fixture() {
    ml::SyntheticConfig config;
    config.num_instances = 2000;
    config.dim = 1 << 14;
    config.avg_nnz = 30;
    config.seed = 17;
    ml::Dataset all = ml::GenerateSynthetic(config);
    auto [tr, te] = all.Split(0.25);
    train = std::make_unique<ml::Dataset>(std::move(tr));
    test = std::make_unique<ml::Dataset>(std::move(te));
    loss = ml::MakeLoss("lr");
  }

  std::unique_ptr<ml::Dataset> train, test;
  std::unique_ptr<ml::Loss> loss;
};

std::unique_ptr<compress::GradientCodec> Codec(const std::string& name) {
  return std::move(core::MakeCodec(name)).value();
}

TEST(NetworkModelTest, TransferSecondsIsLinearInBytes) {
  NetworkModel net{1.0, 0.0, 1.0};  // 1 Gbps, no latency.
  EXPECT_NEAR(net.TransferSeconds(125'000'000), 1.0, 1e-9);  // 1 Gbit.
  NetworkModel congested{10.0, 0.0, 8.0};
  EXPECT_NEAR(congested.TransferSeconds(125'000'000), 0.8, 1e-9);
}

TEST(NetworkModelTest, LatencyDominatesSmallMessages) {
  NetworkModel net = NetworkModel::Wan();
  const double t = net.TransferSeconds(10);
  EXPECT_NEAR(t, net.latency_seconds, 1e-4);
}

TEST(TrainerTest, RunsAnEpochAndReportsStats) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  TrainerConfig config;
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             Codec("adam-double"), cluster, config);
  auto result = trainer.RunEpoch();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EpochStats& stats = *result;
  EXPECT_EQ(stats.epoch, 1);
  EXPECT_EQ(stats.num_batches, 10u);  // batch_ratio 0.1.
  EXPECT_EQ(stats.messages, 40u);     // 4 workers x 10 batches.
  EXPECT_GT(stats.bytes_up, 0u);
  EXPECT_GT(stats.bytes_down, 0u);
  EXPECT_GT(stats.network_seconds, 0.0);
  EXPECT_GT(stats.compute_seconds, 0.0);
  EXPECT_GT(stats.train_loss, 0.0);
  EXPECT_GT(stats.test_loss, 0.0);
  EXPECT_GT(stats.avg_gradient_nnz, 0.0);
  EXPECT_GT(stats.AvgCpuPercent(), 0.0);
  EXPECT_LE(stats.AvgCpuPercent(), 100.0);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  TrainerConfig config;
  config.learning_rate = 0.05;
  config.adam_epsilon = 0.01;  // Noisy small batches; see TrainerConfig.
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             Codec("adam-double"), cluster, config);
  auto result = trainer.Run(5);
  ASSERT_TRUE(result.ok());
  const auto& stats = *result;
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss);
}

TEST(TrainerTest, SketchMlConvergesToo) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  TrainerConfig config;
  config.learning_rate = 0.05;
  config.adam_epsilon = 0.01;
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             Codec("sketchml"), cluster, config);
  auto result = trainer.Run(5);
  ASSERT_TRUE(result.ok());
  const auto& stats = *result;
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss * 1.02);
  EXPECT_LT(stats.back().train_loss, 0.8);  // Meaningfully below log(2).
}

TEST(TrainerTest, SketchMlMovesFewerBytesThanRaw) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  TrainerConfig config;
  uint64_t bytes[2];
  int i = 0;
  for (const char* name : {"adam-double", "sketchml"}) {
    DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                               Codec(name), cluster, config);
    auto result = trainer.RunEpoch();
    ASSERT_TRUE(result.ok());
    bytes[i++] = result->bytes_up + result->bytes_down;
  }
  // At this scaled-down gradient size (~1k nonzeros per message) the
  // fixed 8q-byte bucket-means header limits the rate; paper-scale
  // gradients reach 5-7x (see SketchMlCodecTest.CompressionRate*).
  EXPECT_LT(bytes[1], bytes[0] / 2);
}

TEST(TrainerTest, SimulatedTimeAccumulates) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 2;
  TrainerConfig config;
  config.evaluate_test_loss = false;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             Codec("adam-double"), cluster, config);
  ASSERT_TRUE(trainer.RunEpoch().ok());
  const double after_one = trainer.simulated_seconds();
  ASSERT_TRUE(trainer.RunEpoch().ok());
  EXPECT_GT(trainer.simulated_seconds(), after_one);
  EXPECT_EQ(trainer.epochs_run(), 2);
}

TEST(TrainerTest, NullCodecDefaultsToRaw) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 2;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(), nullptr,
                             cluster, TrainerConfig());
  auto result = trainer.RunEpoch();
  ASSERT_TRUE(result.ok());
  // Raw double: >= 12 bytes per pair on the wire.
  EXPECT_GT(result->AvgMessageBytes(), 12.0 * 10);
}

TEST(TrainerTest, MoreWorkersMoveMoreBytesThroughDriver) {
  // The Figure 11 mechanism: the driver link carries W messages per
  // batch, so total communication grows with W while per-worker compute
  // shrinks — eventually communication dominates for raw gradients.
  Fixture f;
  TrainerConfig config;
  config.evaluate_test_loss = false;
  uint64_t bytes[2];
  double net_seconds[2];
  int i = 0;
  for (int workers : {2, 8}) {
    ClusterConfig cluster;
    cluster.num_workers = workers;
    DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                               Codec("adam-double"), cluster, config);
    auto result = trainer.RunEpoch();
    ASSERT_TRUE(result.ok());
    bytes[i] = result->bytes_up + result->bytes_down;
    net_seconds[i] = result->network_seconds;
    ++i;
  }
  EXPECT_GT(bytes[1], bytes[0]);
  EXPECT_GT(net_seconds[1], net_seconds[0]);
}

TEST(TrainerTest, SmallerBatchesYieldSparserGradients) {
  // Figure 8(d): gradient sparsity shrinks with the batch ratio.
  Fixture f;
  double nnz[2];
  int i = 0;
  for (double ratio : {0.1, 0.01}) {
    ClusterConfig cluster;
    cluster.num_workers = 2;
    TrainerConfig config;
    config.batch_ratio = ratio;
    config.evaluate_test_loss = false;
    DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                               Codec("adam-double"), cluster, config);
    auto result = trainer.RunEpoch();
    ASSERT_TRUE(result.ok());
    nnz[i++] = result->avg_gradient_nnz;
  }
  EXPECT_LT(nnz[1], nnz[0]);
}

TEST(TrainerTest, ShardedParameterServerCutsGatherTime) {
  // With S server shards the gather phase parallelizes across S links,
  // so raw-gradient epochs get dramatically cheaper network time while
  // total bytes stay in the same ballpark.
  Fixture f;
  TrainerConfig config;
  config.evaluate_test_loss = false;
  double net_seconds[2];
  uint64_t bytes[2];
  int i = 0;
  for (int servers : {1, 8}) {
    ClusterConfig cluster;
    cluster.num_workers = 8;
    cluster.num_servers = servers;
    // Scale the link down so transfer time is byte-dominated (sharding
    // cannot help with per-message latency, only with serialized bytes).
    cluster.network = NetworkModel::Scaled(NetworkModel::Lab1Gbps(), 840.0);
    DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                               Codec("adam-double"), cluster, config);
    auto result = trainer.RunEpoch();
    ASSERT_TRUE(result.ok());
    net_seconds[i] = result->network_seconds;
    bytes[i] = result->bytes_up;
    ++i;
  }
  EXPECT_LT(net_seconds[1], net_seconds[0] * 0.5);
  EXPECT_LT(bytes[1], bytes[0] * 3 / 2);  // Only framing overhead grows.
}

TEST(TrainerTest, ShardedTrainingStillConverges) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.num_servers = 4;
  TrainerConfig config;
  config.learning_rate = 0.05;
  config.adam_epsilon = 0.01;
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             Codec("sketchml"), cluster, config);
  auto result = trainer.Run(4);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->back().train_loss, 0.8);
}

TEST(TrainerTest, SingleServerMatchesLegacyMessageCount) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.num_servers = 1;
  TrainerConfig config;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             Codec("adam-double"), cluster, config);
  auto result = trainer.RunEpoch();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->messages, 40u);  // 4 workers x 10 batches.
}

TEST(EpochStatsTest, AggregateSums) {
  EpochStats a, b;
  a.epoch = 1;
  a.compute_seconds = 1.0;
  a.bytes_up = 100;
  a.messages = 2;
  a.avg_gradient_nnz = 10;
  a.train_loss = 0.5;
  b.epoch = 2;
  b.compute_seconds = 2.0;
  b.bytes_up = 200;
  b.messages = 4;
  b.avg_gradient_nnz = 20;
  b.train_loss = 0.4;
  EpochStats total = Aggregate({a, b});
  EXPECT_DOUBLE_EQ(total.compute_seconds, 3.0);
  EXPECT_EQ(total.bytes_up, 300u);
  EXPECT_EQ(total.messages, 6u);
  EXPECT_DOUBLE_EQ(total.train_loss, 0.4);  // Last epoch.
  EXPECT_DOUBLE_EQ(total.avg_gradient_nnz, 15.0);
  EXPECT_EQ(total.epoch, 2);
}

TEST(EpochStatsTest, ToStringMentionsLoss) {
  EpochStats s;
  s.epoch = 3;
  s.train_loss = 0.25;
  EXPECT_NE(s.ToString().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace sketchml::dist
