#include "compress/error_feedback_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "common/random.h"
#include "compress/one_bit_codec.h"
#include "compress/raw_codec.h"
#include "compress/zipml_codec.h"
#include "core/sketchml_codec.h"

namespace sketchml::compress {
namespace {

common::SparseGradient FixedGradient(double scale, uint64_t seed) {
  common::Rng rng(seed);
  common::SparseGradient grad;
  uint64_t key = 0;
  for (int i = 0; i < 400; ++i) {
    key += 1 + rng.NextBounded(40);
    grad.push_back({key, rng.NextGaussian() * scale});
  }
  return grad;
}

TEST(ErrorFeedbackCodecTest, LosslessInnerLeavesNoResidual) {
  ErrorFeedbackCodec codec(std::make_unique<RawCodec>());
  const auto grad = FixedGradient(0.1, 401);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  EXPECT_EQ(codec.ResidualSize(), 0u);
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_EQ(decoded, grad);
  EXPECT_EQ(codec.Name(), "adam-double+ef");
}

TEST(ErrorFeedbackCodecTest, ResidualEqualsWhatTheCodecLost) {
  ErrorFeedbackCodec codec(std::make_unique<core::SketchMlCodec>());
  const auto grad = FixedGradient(0.1, 409);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  // grad - decoded must equal the stored residual (first call: residual
  // started empty so compensated == grad).
  double expected_l1 = 0.0;
  for (size_t i = 0; i < grad.size(); ++i) {
    expected_l1 += std::abs(grad[i].value - decoded[i].value);
  }
  EXPECT_NEAR(codec.ResidualL1(), expected_l1, 1e-9);
}

TEST(ErrorFeedbackCodecTest, AccumulatedTransmissionIsUnbiased) {
  // The defining property: sum of decoded messages converges to the sum
  // of inputs, even though each message is biased (MinMax decay).
  ErrorFeedbackCodec codec(std::make_unique<core::SketchMlCodec>());
  const auto grad = FixedGradient(0.1, 419);

  std::map<uint64_t, double> sent_total, received_total;
  const int rounds = 30;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& pair : grad) sent_total[pair.key] += pair.value;
    EncodedGradient msg;
    ASSERT_TRUE(codec.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
    for (const auto& pair : decoded) received_total[pair.key] += pair.value;
  }
  // Relative L1 gap between what was sent and what arrived, over rounds.
  double gap = 0.0, norm = 0.0;
  for (const auto& [key, sent] : sent_total) {
    gap += std::abs(sent - received_total[key]);
    norm += std::abs(sent);
  }
  // Residual is bounded (one message's worth), so the per-round share of
  // the gap shrinks like 1/rounds.
  EXPECT_LT(gap / norm, 0.15);

  // Compare with no feedback: the bias compounds every round.
  core::SketchMlCodec plain;
  std::map<uint64_t, double> plain_received;
  for (int round = 0; round < rounds; ++round) {
    EncodedGradient msg;
    ASSERT_TRUE(plain.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    ASSERT_TRUE(plain.Decode(msg, &decoded).ok());
    for (const auto& pair : decoded) plain_received[pair.key] += pair.value;
  }
  double plain_gap = 0.0;
  for (const auto& [key, sent] : sent_total) {
    plain_gap += std::abs(sent - plain_received[key]);
  }
  EXPECT_LT(gap, plain_gap / 2);
}

TEST(ErrorFeedbackCodecTest, OneBitWithFeedbackTransmitsMagnitudes) {
  // 1-bit SGD's own recipe [39]: sign quantization alone destroys
  // magnitudes, but with error feedback the accumulated stream recovers
  // them.
  ErrorFeedbackCodec with_ef(std::make_unique<OneBitCodec>());
  const auto grad = FixedGradient(0.1, 421);
  std::map<uint64_t, double> sent_total, received_total;
  const int rounds = 60;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& pair : grad) sent_total[pair.key] += pair.value;
    EncodedGradient msg;
    ASSERT_TRUE(with_ef.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    ASSERT_TRUE(with_ef.Decode(msg, &decoded).ok());
    for (const auto& pair : decoded) received_total[pair.key] += pair.value;
  }
  double gap = 0.0, norm = 0.0;
  for (const auto& [key, sent] : sent_total) {
    gap += std::abs(sent - received_total[key]);
    norm += std::abs(sent);
  }
  EXPECT_LT(gap / norm, 0.5);  // Without feedback this ratio is >> 1.
}

TEST(ErrorFeedbackCodecTest, ResidualOnlyKeysStillTransmitted) {
  // A key present in round 1 but absent afterwards must still have its
  // residual delivered in later messages.
  ErrorFeedbackCodec codec(std::make_unique<ZipMlCodec>(8, 3));
  common::SparseGradient first = {{5, 0.4}, {9, -0.2}, {12345, 0.31}};
  common::SparseGradient later = {{5, 0.4}, {9, -0.2}};
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(first, &msg).ok());
  common::SparseGradient decoded;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(codec.Encode(later, &msg).ok());
    ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  }
  // After enough rounds key 12345's leftover is flushed through the
  // messages and the residual mass stays bounded.
  EXPECT_LT(codec.ResidualL1(), 0.5);
}

TEST(ErrorFeedbackCodecTest, RejectsUnsortedInput) {
  ErrorFeedbackCodec codec(std::make_unique<RawCodec>());
  EncodedGradient msg;
  common::SparseGradient bad = {{7, 1.0}, {3, 1.0}};
  EXPECT_FALSE(codec.Encode(bad, &msg).ok());
}

}  // namespace
}  // namespace sketchml::compress
