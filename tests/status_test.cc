#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace sketchml::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::CorruptedData("x").code(), StatusCode::kCorruptedData);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_EQ(Status::Internal("boom").ToString(), "internal: boom");
  EXPECT_EQ(Status::Unavailable("no quorum").ToString(),
            "unavailable: no quorum");
}

Status FailsThenSucceeds(bool fail) {
  SKETCHML_RETURN_IF_ERROR(
      fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenSucceeds(false).ok());
  EXPECT_EQ(FailsThenSucceeds(true).code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status UseAssignOrReturn(int v, int* out) {
  SKETCHML_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  ASSERT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-3, &out).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace sketchml::common
