#include "dist/stats.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/obs.h"
#include "common/trace.h"
#include "core/codec_factory.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

TEST(EpochStatsTest, AvgCpuPercentIsBetweenZeroAndHundred) {
  EpochStats stats;
  stats.compute_seconds = 3.0;
  stats.network_seconds = 1.0;
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 75.0);
}

TEST(EpochStatsTest, AvgCpuPercentGuardsNegativeModeledNetwork) {
  // network_seconds is modeled; a broken NetworkModel configuration can
  // produce a negative value. That must not yield > 100% CPU.
  EpochStats stats;
  stats.compute_seconds = 2.0;
  stats.network_seconds = -1.0;
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 100.0);
}

TEST(EpochStatsTest, AvgCpuPercentZeroWhenNothingMeasured) {
  EpochStats stats;
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 0.0);
  stats.network_seconds = -5.0;  // Only a bogus negative: still 0, not NaN.
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 0.0);
}

TEST(EpochStatsTest, PublishIsNoOpWhileMetricsDisabled) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(false);
  EpochStats stats;
  stats.compute_seconds = 1.0;
  PublishEpochStats(stats);
  obs::SetMetricsEnabled(true);
  const auto snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("trainer/compute_seconds"), 0.0);
  obs::SetMetricsEnabled(was_enabled);
}

/// The tentpole's backward-compat contract: EpochStats derived from
/// registry snapshots around one trainer epoch equals the struct the
/// trainer returned, field for field (exact doubles — publication stores
/// and the delta against a reset registry subtracts zero).
TEST(EpochStatsTest, StatsAreAViewOverTheMetricsRegistry) {
  ml::SyntheticConfig data_config;
  data_config.num_instances = 1200;
  data_config.dim = 1 << 12;
  data_config.avg_nnz = 20;
  data_config.seed = 23;
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  ClusterConfig cluster;
  cluster.num_workers = 3;
  TrainerConfig config;
  config.num_threads = 2;
  DistributedTrainer trainer(&train, &test, loss.get(),
                             std::move(core::MakeCodec("sketchml")).value(),
                             cluster, config);

  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  const auto before = obs::MetricsRegistry::Global().Snapshot();

  auto result = trainer.RunEpoch();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EpochStats& direct = *result;

  const auto after = obs::MetricsRegistry::Global().Snapshot();
  const EpochStats view = EpochStatsFromMetrics(before, after);

  EXPECT_EQ(view.epoch, direct.epoch);
  EXPECT_DOUBLE_EQ(view.compute_seconds, direct.compute_seconds);
  EXPECT_DOUBLE_EQ(view.encode_seconds, direct.encode_seconds);
  EXPECT_DOUBLE_EQ(view.decode_seconds, direct.decode_seconds);
  EXPECT_DOUBLE_EQ(view.update_seconds, direct.update_seconds);
  EXPECT_DOUBLE_EQ(view.network_seconds, direct.network_seconds);
  EXPECT_EQ(view.bytes_up, direct.bytes_up);
  EXPECT_EQ(view.bytes_down, direct.bytes_down);
  EXPECT_EQ(view.messages, direct.messages);
  EXPECT_EQ(view.num_batches, direct.num_batches);
  EXPECT_DOUBLE_EQ(view.avg_gradient_nnz, direct.avg_gradient_nnz);
  EXPECT_DOUBLE_EQ(view.train_loss, direct.train_loss);
  EXPECT_DOUBLE_EQ(view.test_loss, direct.test_loss);
  EXPECT_DOUBLE_EQ(view.TotalSeconds(), direct.TotalSeconds());

  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(was_enabled);
}

TEST(EpochStatsTest, InstrumentationDoesNotPerturbResults) {
  // Same trainer config run twice, once with metrics+tracing and once
  // fully disabled: losses and byte counts must match bit for bit.
  const auto run = [](bool enabled) {
    ml::SyntheticConfig data_config;
    data_config.num_instances = 800;
    data_config.dim = 1 << 12;
    data_config.avg_nnz = 20;
    data_config.seed = 7;
    ml::Dataset all = ml::GenerateSynthetic(data_config);
    auto [train, test] = all.Split(0.25);
    auto loss = ml::MakeLoss("lr");
    ClusterConfig cluster;
    cluster.num_workers = 2;
    TrainerConfig config;
    DistributedTrainer trainer(&train, &test, loss.get(),
                               std::move(core::MakeCodec("sketchml")).value(),
                               cluster, config);
    const bool was_metrics = obs::MetricsEnabled();
    const bool was_tracing = obs::TracingEnabled();
    obs::SetMetricsEnabled(enabled);
    obs::SetTracingEnabled(enabled);
    auto result = trainer.RunEpoch();
    obs::SetMetricsEnabled(was_metrics);
    obs::SetTracingEnabled(was_tracing);
    return std::move(result).value();
  };
  const EpochStats with_obs = run(true);
  const EpochStats without_obs = run(false);
  EXPECT_EQ(with_obs.bytes_up, without_obs.bytes_up);
  EXPECT_EQ(with_obs.bytes_down, without_obs.bytes_down);
  EXPECT_EQ(with_obs.messages, without_obs.messages);
  EXPECT_EQ(with_obs.train_loss, without_obs.train_loss);
  EXPECT_EQ(with_obs.test_loss, without_obs.test_loss);
  obs::MetricsRegistry::Global().Reset();
  obs::TraceLog::Global().Reset();
}

}  // namespace
}  // namespace sketchml::dist
