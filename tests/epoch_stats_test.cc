#include "dist/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "common/metrics_sampler.h"
#include "common/obs.h"
#include "common/trace.h"
#include "core/codec_factory.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

TEST(EpochStatsTest, AvgCpuPercentIsBetweenZeroAndHundred) {
  EpochStats stats;
  stats.compute_seconds = 3.0;
  stats.network_seconds = 1.0;
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 75.0);
}

TEST(EpochStatsTest, AvgCpuPercentGuardsNegativeModeledNetwork) {
  // network_seconds is modeled; a broken NetworkModel configuration can
  // produce a negative value. That must not yield > 100% CPU.
  EpochStats stats;
  stats.compute_seconds = 2.0;
  stats.network_seconds = -1.0;
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 100.0);
}

TEST(EpochStatsTest, AvgCpuPercentZeroWhenNothingMeasured) {
  EpochStats stats;
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 0.0);
  stats.network_seconds = -5.0;  // Only a bogus negative: still 0, not NaN.
  EXPECT_DOUBLE_EQ(stats.AvgCpuPercent(), 0.0);
}

TEST(EpochStatsTest, PublishIsNoOpWhileMetricsDisabled) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(false);
  EpochStats stats;
  stats.compute_seconds = 1.0;
  PublishEpochStats(stats);
  obs::SetMetricsEnabled(true);
  const auto snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snap.CounterValueOf("trainer/compute_seconds"), 0.0);
  obs::SetMetricsEnabled(was_enabled);
}

/// The tentpole's backward-compat contract: EpochStats derived from
/// registry snapshots around one trainer epoch equals the struct the
/// trainer returned, field for field (exact doubles — publication stores
/// and the delta against a reset registry subtracts zero).
TEST(EpochStatsTest, StatsAreAViewOverTheMetricsRegistry) {
  ml::SyntheticConfig data_config;
  data_config.num_instances = 1200;
  data_config.dim = 1 << 12;
  data_config.avg_nnz = 20;
  data_config.seed = 23;
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  ClusterConfig cluster;
  cluster.num_workers = 3;
  TrainerConfig config;
  config.num_threads = 2;
  DistributedTrainer trainer(&train, &test, loss.get(),
                             std::move(core::MakeCodec("sketchml")).value(),
                             cluster, config);

  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  const auto before = obs::MetricsRegistry::Global().Snapshot();

  auto result = trainer.RunEpoch();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EpochStats& direct = *result;

  const auto after = obs::MetricsRegistry::Global().Snapshot();
  const EpochStats view = EpochStatsFromMetrics(before, after);

  EXPECT_EQ(view.epoch, direct.epoch);
  EXPECT_DOUBLE_EQ(view.compute_seconds, direct.compute_seconds);
  EXPECT_DOUBLE_EQ(view.encode_seconds, direct.encode_seconds);
  EXPECT_DOUBLE_EQ(view.decode_seconds, direct.decode_seconds);
  EXPECT_DOUBLE_EQ(view.update_seconds, direct.update_seconds);
  EXPECT_DOUBLE_EQ(view.network_seconds, direct.network_seconds);
  EXPECT_EQ(view.bytes_up, direct.bytes_up);
  EXPECT_EQ(view.bytes_down, direct.bytes_down);
  EXPECT_EQ(view.messages, direct.messages);
  EXPECT_EQ(view.num_batches, direct.num_batches);
  EXPECT_DOUBLE_EQ(view.avg_gradient_nnz, direct.avg_gradient_nnz);
  EXPECT_DOUBLE_EQ(view.train_loss, direct.train_loss);
  EXPECT_DOUBLE_EQ(view.test_loss, direct.test_loss);
  EXPECT_DOUBLE_EQ(view.TotalSeconds(), direct.TotalSeconds());

  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(was_enabled);
}

TEST(EpochStatsTest, InstrumentationDoesNotPerturbResults) {
  // Same trainer config run twice, once with metrics+tracing and once
  // fully disabled: losses and byte counts must match bit for bit.
  const auto run = [](bool enabled) {
    ml::SyntheticConfig data_config;
    data_config.num_instances = 800;
    data_config.dim = 1 << 12;
    data_config.avg_nnz = 20;
    data_config.seed = 7;
    ml::Dataset all = ml::GenerateSynthetic(data_config);
    auto [train, test] = all.Split(0.25);
    auto loss = ml::MakeLoss("lr");
    ClusterConfig cluster;
    cluster.num_workers = 2;
    TrainerConfig config;
    DistributedTrainer trainer(&train, &test, loss.get(),
                               std::move(core::MakeCodec("sketchml")).value(),
                               cluster, config);
    const bool was_metrics = obs::MetricsEnabled();
    const bool was_tracing = obs::TracingEnabled();
    obs::SetMetricsEnabled(enabled);
    obs::SetTracingEnabled(enabled);
    auto result = trainer.RunEpoch();
    obs::SetMetricsEnabled(was_metrics);
    obs::SetTracingEnabled(was_tracing);
    return std::move(result).value();
  };
  const EpochStats with_obs = run(true);
  const EpochStats without_obs = run(false);
  EXPECT_EQ(with_obs.bytes_up, without_obs.bytes_up);
  EXPECT_EQ(with_obs.bytes_down, without_obs.bytes_down);
  EXPECT_EQ(with_obs.messages, without_obs.messages);
  EXPECT_EQ(with_obs.train_loss, without_obs.train_loss);
  EXPECT_EQ(with_obs.test_loss, without_obs.test_loss);
  obs::MetricsRegistry::Global().Reset();
  obs::TraceLog::Global().Reset();
}

/// The per-entity slices must roll back up to the aggregate phase
/// counters: same doubles, possibly re-added in a different order, so
/// compare with a tight relative bound instead of bit equality.
TEST(EpochStatsTest, PerEntitySlicesReconcileWithAggregates) {
  ml::SyntheticConfig data_config;
  data_config.num_instances = 1200;
  data_config.dim = 1 << 12;
  data_config.avg_nnz = 20;
  data_config.seed = 31;
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  ClusterConfig cluster;
  cluster.num_workers = 3;
  cluster.num_servers = 2;
  TrainerConfig config;
  config.num_threads = 2;
  // Per-entity handles resolve at construction, so metrics must already
  // be on (the CLI enables them before building the trainer too).
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  DistributedTrainer trainer(&train, &test, loss.get(),
                             std::move(core::MakeCodec("sketchml")).value(),
                             cluster, config);

  auto result = trainer.RunEpoch();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EpochStats& stats = *result;
  const auto snap = obs::MetricsRegistry::Global().Snapshot();

  const auto near = [](double value, double want) {
    EXPECT_NEAR(value, want, 1e-9 * std::max(1.0, std::abs(want)));
  };
  // compute = sum over workers.
  near(snap.SumCounters("trainer/worker_seconds", {{"phase", "compute"}}),
       stats.compute_seconds);
  // encode = worker encode + driver broadcast encode.
  near(snap.SumCounters("trainer/worker_seconds", {{"phase", "encode"}}) +
           snap.SumCounters("trainer/driver_seconds", {{"phase", "encode"}}),
       stats.encode_seconds);
  // decode = server-side decode + driver decode of broadcast replies.
  near(snap.SumCounters("trainer/server_seconds", {{"phase", "decode"}}) +
           snap.SumCounters("trainer/driver_seconds", {{"phase", "decode"}}),
       stats.decode_seconds);
  near(snap.SumCounters("trainer/driver_seconds", {{"phase", "update"}}),
       stats.update_seconds);
  near(snap.SumCounters("trainer/driver_seconds", {{"phase", "network"}}),
       stats.network_seconds);

  // Every configured entity actually published a slice.
  for (int w = 0; w < cluster.num_workers; ++w) {
    EXPECT_GT(snap.SumCounters("trainer/worker_seconds",
                               {{"worker", std::to_string(w)}}),
              0.0)
        << "worker " << w;
  }
  for (int s = 0; s < cluster.num_servers; ++s) {
    EXPECT_GT(snap.SumCounters("trainer/server_seconds",
                               {{"server", std::to_string(s)}}),
              0.0)
        << "server " << s;
  }
  // SketchML is lossy, so recovery error is nonzero and the reference
  // magnitude (denominator for the relative error) dominates it.
  const double err = snap.SumCounters("trainer/recovery_error_l1", {});
  const double ref = snap.SumCounters("trainer/recovery_ref_l1", {});
  EXPECT_GT(err, 0.0);
  EXPECT_GT(ref, err);

  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(was_enabled);
}

TEST(EpochStatsTest, SamplerDoesNotPerturbResults) {
  // A run with the background sampler snapshotting aggressively must be
  // bit-identical to a run without it: the sampler only reads.
  const auto run = [](bool with_sampler, std::vector<EpochStats>* out) {
    ml::SyntheticConfig data_config;
    data_config.num_instances = 800;
    data_config.dim = 1 << 12;
    data_config.avg_nnz = 20;
    data_config.seed = 11;
    ml::Dataset all = ml::GenerateSynthetic(data_config);
    auto [train, test] = all.Split(0.25);
    auto loss = ml::MakeLoss("lr");
    ClusterConfig cluster;
    cluster.num_workers = 2;
    TrainerConfig config;
    DistributedTrainer trainer(&train, &test, loss.get(),
                               std::move(core::MakeCodec("sketchml")).value(),
                               cluster, config);
    const bool was_enabled = obs::MetricsEnabled();
    obs::SetMetricsEnabled(true);
    obs::MetricsRegistry::Global().Reset();

    std::unique_ptr<obs::MetricsSampler> sampler;
    const std::string path =
        ::testing::TempDir() + "/sampler_identity.series.jsonl";
    if (with_sampler) {
      obs::MetricsSampler::Options options;
      options.out_path = path;
      options.interval_seconds = 1e-3;  // Aggressive: many samples.
      options.metadata.Add("test", "sampler_identity");
      auto started = obs::MetricsSampler::Start(std::move(options));
      ASSERT_TRUE(started.ok()) << started.status().ToString();
      sampler = std::move(*started);
    }
    auto r1 = trainer.RunEpoch();
    ASSERT_TRUE(r1.ok());
    if (sampler != nullptr) sampler->SampleNow("epoch");
    auto r2 = trainer.RunEpoch();
    ASSERT_TRUE(r2.ok());
    if (sampler != nullptr) {
      ASSERT_TRUE(sampler->Stop().ok());
      EXPECT_GE(sampler->samples_written(), 2u);
      std::remove(path.c_str());
    }
    obs::MetricsRegistry::Global().Reset();
    obs::SetMetricsEnabled(was_enabled);
    out->push_back(*r1);
    out->push_back(*r2);
  };
  std::vector<EpochStats> plain;
  std::vector<EpochStats> sampled;
  run(false, &plain);
  run(true, &sampled);
  ASSERT_EQ(plain.size(), 2u);
  ASSERT_EQ(sampled.size(), 2u);
  for (size_t e = 0; e < plain.size(); ++e) {
    EXPECT_EQ(plain[e].bytes_up, sampled[e].bytes_up) << "epoch " << e;
    EXPECT_EQ(plain[e].bytes_down, sampled[e].bytes_down) << "epoch " << e;
    EXPECT_EQ(plain[e].messages, sampled[e].messages) << "epoch " << e;
    EXPECT_EQ(plain[e].train_loss, sampled[e].train_loss) << "epoch " << e;
    EXPECT_EQ(plain[e].test_loss, sampled[e].test_loss) << "epoch " << e;
  }
}

}  // namespace
}  // namespace sketchml::dist
