#include "sketch/min_max_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/byte_buffer.h"
#include "common/random.h"

namespace sketchml::sketch {
namespace {

TEST(MinMaxSketchTest, ExactWithoutCollisions) {
  MinMaxSketch sketch(3, 4096);
  for (uint64_t key = 0; key < 50; ++key) {
    sketch.Insert(key, static_cast<uint8_t>(key % 200));
  }
  for (uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(sketch.Query(key), key % 200) << "key " << key;
  }
}

TEST(MinMaxSketchTest, NeverOverestimates) {
  // The defining property (§3.3): hash collisions may only shrink the
  // stored value, so Query(key) <= inserted value, always.
  MinMaxSketch sketch(2, 100);  // Cramped: heavy collisions.
  common::Rng rng(73);
  std::map<uint64_t, uint8_t> truth;
  for (uint64_t key = 0; key < 1000; ++key) {
    const uint8_t v = static_cast<uint8_t>(rng.NextBounded(254));
    truth[key] = v;
    sketch.Insert(key, v);
  }
  for (const auto& [key, v] : truth) {
    EXPECT_LE(sketch.Query(key), v) << "key " << key;
  }
}

TEST(MinMaxSketchTest, CellHoldsMinimumOfCollidingValues) {
  // Theorem A.4: each bin equals the minimum value among keys mapping to
  // it. With rows = 1 the query returns that bin directly.
  MinMaxSketch sketch(1, 10);
  common::Rng rng(79);
  std::map<uint64_t, uint8_t> truth;
  for (uint64_t key = 0; key < 200; ++key) {
    const uint8_t v = static_cast<uint8_t>(rng.NextBounded(200));
    truth[key] = v;
    sketch.Insert(key, v);
  }
  // Recompute the per-bin minimum via a parallel single-row sketch probe:
  // query of key k must equal min over keys that share k's bin.
  MinMaxSketch probe(1, 10, sketch.seed());
  for (const auto& [key, v] : truth) {
    uint8_t expected = MinMaxSketch::kEmpty;
    for (const auto& [other_key, other_v] : truth) {
      // Same bin iff single-row probe maps them together. Use a sketch
      // with one distinct value to detect sharing.
      MinMaxSketch pair_probe(1, 10, sketch.seed());
      pair_probe.Insert(other_key, 0);
      if (pair_probe.Query(key) == 0) {
        expected = std::min(expected, other_v);
      }
    }
    EXPECT_EQ(sketch.Query(key), expected) << "key " << key;
  }
}

TEST(MinMaxSketchTest, MoreRowsReduceError) {
  common::Rng rng(83);
  std::vector<std::pair<uint64_t, uint8_t>> items;
  for (uint64_t key = 0; key < 2000; ++key) {
    items.emplace_back(key, static_cast<uint8_t>(rng.NextBounded(250)));
  }
  double err_by_rows[5] = {0};
  for (int rows : {1, 2, 4}) {
    MinMaxSketch sketch(rows, 800);
    for (const auto& [k, v] : items) sketch.Insert(k, v);
    double err = 0;
    for (const auto& [k, v] : items) {
      err += static_cast<double>(v) - sketch.Query(k);
    }
    err_by_rows[rows == 1 ? 0 : (rows == 2 ? 1 : 2)] = err;
  }
  EXPECT_LE(err_by_rows[1], err_by_rows[0]);
  EXPECT_LE(err_by_rows[2], err_by_rows[1]);
}

TEST(MinMaxSketchTest, QueryUnknownKeyReturnsEmptyOnFreshSketch) {
  MinMaxSketch sketch(3, 64);
  EXPECT_EQ(sketch.Query(42), MinMaxSketch::kEmpty);
}

TEST(MinMaxSketchTest, InsertingMaxIndexActsAsNoOp) {
  MinMaxSketch sketch(2, 16);
  sketch.Insert(1, MinMaxSketch::kEmpty);  // Legal; same as untouched bin.
  EXPECT_EQ(sketch.Query(1), MinMaxSketch::kEmpty);
  sketch.Insert(1, 7);
  EXPECT_EQ(sketch.Query(1), 7);
}

TEST(MinMaxSketchTest, SerializationRoundTrips) {
  MinMaxSketch sketch(2, 333, /*seed=*/99);
  common::Rng rng(89);
  for (uint64_t key = 0; key < 500; ++key) {
    sketch.Insert(key * 7 + 1, static_cast<uint8_t>(rng.NextBounded(100)));
  }
  common::ByteWriter writer;
  sketch.Serialize(&writer);
  EXPECT_GE(writer.size(), sketch.SizeBytes());

  common::ByteReader reader(writer.buffer());
  MinMaxSketch restored(1, 1);
  ASSERT_TRUE(MinMaxSketch::Deserialize(&reader, &restored).ok());
  EXPECT_EQ(restored.rows(), 2);
  EXPECT_EQ(restored.cols(), 333);
  EXPECT_EQ(restored.seed(), 99u);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(restored.Query(key * 7 + 1), sketch.Query(key * 7 + 1));
  }
}

TEST(MinMaxSketchTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0xff, 0xff, 0xff, 0xff, 0xff};
  common::ByteReader reader(junk.data(), junk.size());
  MinMaxSketch out(1, 1);
  EXPECT_FALSE(MinMaxSketch::Deserialize(&reader, &out).ok());
}

TEST(MinMaxSketchTest, DeserializeRejectsTruncatedTable) {
  MinMaxSketch sketch(2, 100);
  sketch.Insert(1, 7);
  common::ByteWriter writer;
  sketch.Serialize(&writer);
  auto bytes = writer.buffer();
  bytes.resize(bytes.size() - 10);  // Chop the table.
  common::ByteReader reader(bytes.data(), bytes.size());
  MinMaxSketch out(1, 1);
  EXPECT_EQ(MinMaxSketch::Deserialize(&reader, &out).code(),
            common::StatusCode::kCorruptedData);
}

// Regression: a corrupt header whose rows * cols wraps uint64_t (e.g.
// rows=2, cols=2^63) used to dodge the size bound and attempt a giant
// allocation; same for cols that fit the bound but overflow the `int`
// constructor parameter.
TEST(MinMaxSketchTest, DeserializeRejectsOverflowingShape) {
  const auto try_shape = [](uint64_t rows, uint64_t cols) {
    common::ByteWriter writer;
    writer.WriteVarint(rows);
    writer.WriteVarint(cols);
    writer.WriteU64(13);  // Seed.
    // A little "table" so the header itself is not truncated.
    writer.WriteBytes(std::vector<uint8_t>(16, 0xff));
    common::ByteReader reader(writer.buffer());
    MinMaxSketch out(1, 1);
    return MinMaxSketch::Deserialize(&reader, &out);
  };
  // rows * cols == 2^64 exactly: wraps to 0.
  EXPECT_EQ(try_shape(2, uint64_t{1} << 63).code(),
            common::StatusCode::kCorruptedData);
  // Wraps to a small plausible-looking product (17 * (2^64/17 rounded)).
  EXPECT_EQ(try_shape(17, 0xf0f0f0f0f0f0f0fULL + 1).code(),
            common::StatusCode::kCorruptedData);
  // Fits uint64_t but cols overflows int.
  EXPECT_EQ(try_shape(1, uint64_t{1} << 32).code(),
            common::StatusCode::kCorruptedData);
  // Zero dimensions and absurd row counts are equally corrupt.
  EXPECT_EQ(try_shape(0, 10).code(), common::StatusCode::kCorruptedData);
  EXPECT_EQ(try_shape(10, 0).code(), common::StatusCode::kCorruptedData);
  EXPECT_EQ(try_shape(65, 1).code(), common::StatusCode::kCorruptedData);
  // Sanity: an honest small shape with a complete table still loads.
  EXPECT_TRUE(try_shape(2, 8).ok());
}

// Correctness rate (Appendix A.2, Eq. 2): the fraction of keys whose query
// is exact matches the closed form within sampling noise.
class MinMaxCorrectnessRateTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MinMaxCorrectnessRateTest, MatchesClosedForm) {
  const int rows = std::get<0>(GetParam());
  const int cols = std::get<1>(GetParam());
  const int v_items = std::get<2>(GetParam());
  MinMaxSketch sketch(rows, cols, /*seed=*/1234 + rows * 100 + cols);

  // Insert v items with *distinct* frequencies-as-values so Eq. 2's
  // "all elements have different frequencies" case applies; element l
  // (1-based) has the l-th smallest value.
  for (int l = 0; l < v_items; ++l) {
    sketch.Insert(static_cast<uint64_t>(l) * 2654435761ULL + 7,
                  static_cast<uint8_t>(l * 250 / v_items));
  }
  int correct = 0;
  for (int l = 0; l < v_items; ++l) {
    const uint8_t got =
        sketch.Query(static_cast<uint64_t>(l) * 2654435761ULL + 7);
    if (got == static_cast<uint8_t>(l * 250 / v_items)) ++correct;
  }
  const double measured = static_cast<double>(correct) / v_items;

  double expected = 0.0;
  for (int l = 1; l <= v_items; ++l) {
    const double p_row = std::pow(1.0 - 1.0 / cols, v_items - l);
    expected += 1.0 - std::pow(1.0 - p_row, rows);
  }
  expected /= v_items;

  // Eq. 2 is a lower bound (ties only help); allow sampling slack.
  EXPECT_GE(measured, expected - 0.08)
      << "rows=" << rows << " cols=" << cols << " v=" << v_items;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MinMaxCorrectnessRateTest,
    ::testing::Values(std::make_tuple(2, 200, 1000),
                      std::make_tuple(2, 500, 1000),
                      std::make_tuple(4, 200, 1000),
                      std::make_tuple(1, 1000, 2000),
                      std::make_tuple(3, 100, 500)));

}  // namespace
}  // namespace sketchml::sketch
