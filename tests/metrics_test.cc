#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/gradient.h"
#include "ml/optimizer.h"
#include "ml/synthetic.h"

namespace sketchml::ml {
namespace {

TEST(AucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(
      AucFromScores({-2.0, -1.0, 1.0, 2.0}, {-1, -1, 1, 1}), 1.0);
}

TEST(AucTest, PerfectlyWrongIsZero) {
  EXPECT_DOUBLE_EQ(
      AucFromScores({2.0, 1.0, -1.0, -2.0}, {-1, -1, 1, 1}), 0.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  common::Rng rng(353);
  std::vector<double> scores, labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.NextGaussian());
    labels.push_back(rng.NextBernoulli(0.5) ? 1.0 : -1.0);
  }
  EXPECT_NEAR(AucFromScores(scores, labels), 0.5, 0.02);
}

TEST(AucTest, TiesAveraged) {
  // Two positives and two negatives all scoring the same: AUC = 0.5.
  EXPECT_DOUBLE_EQ(AucFromScores({1, 1, 1, 1}, {1, 1, -1, -1}), 0.5);
}

TEST(AucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(AucFromScores({1, 2, 3}, {1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AucFromScores({}, {}), 0.5);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  const std::vector<double> labels = {1, -1, 1, -1, 1, -1, -1, 1};
  const std::vector<double> scores = {0.9, 0.2, 0.7, 0.4, 0.6, 0.1, 0.5, 0.8};
  std::vector<double> scaled;
  for (double s : scores) scaled.push_back(100 * s - 3);
  EXPECT_DOUBLE_EQ(AucFromScores(scores, labels),
                   AucFromScores(scaled, labels));
}

TEST(AucTest, TrainingImprovesModelAuc) {
  SyntheticConfig config;
  config.num_instances = 3000;
  config.dim = 1 << 13;
  config.label_noise = 0.05;
  config.seed = 31;
  Dataset data = GenerateSynthetic(config);
  LogisticLoss loss;
  AdamOptimizer opt(data.dim(), 0.05, 0.9, 0.999, 0.01);
  const double before = ComputeAuc(opt.weights(), data);
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (size_t b = 0; b < data.size(); b += 300) {
      opt.Apply(ComputeBatchGradient(loss, opt.weights(), data, b,
                                     std::min(data.size(), b + 300), 0.001));
    }
  }
  const double after = ComputeAuc(opt.weights(), data);
  EXPECT_NEAR(before, 0.5, 0.05);  // Untrained model is uninformed.
  EXPECT_GT(after, 0.8);
}

TEST(RmseTest, ZeroForExactPredictions) {
  std::vector<Instance> instances(2);
  instances[0].features = {{0, 1.0f}};
  instances[0].label = 2.0;
  instances[1].features = {{1, 1.0f}};
  instances[1].label = -3.0;
  Dataset data(std::move(instances), 2);
  DenseVector w = {2.0, -3.0};
  EXPECT_DOUBLE_EQ(ComputeRmse(w, data), 0.0);
}

TEST(RmseTest, KnownValue) {
  std::vector<Instance> instances(2);
  instances[0].features = {{0, 1.0f}};
  instances[0].label = 1.0;
  instances[1].features = {{0, 1.0f}};
  instances[1].label = 3.0;
  Dataset data(std::move(instances), 1);
  DenseVector w = {2.0};  // Errors -1 and +1.
  EXPECT_DOUBLE_EQ(ComputeRmse(w, data), 1.0);
}

}  // namespace
}  // namespace sketchml::ml
