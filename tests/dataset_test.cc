#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "ml/synthetic.h"
#include "ml/types.h"

namespace sketchml::ml {
namespace {

TEST(LibSvmParseTest, ParsesBasicFile) {
  const std::string text =
      "+1 1:0.5 7:1.0 42:2.5\n"
      "-1 2:1.0\n"
      "# a comment line\n"
      "\n"
      "0 3:4.0 5:0.5\n";
  auto result = ParseLibSvm(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& data = *result;
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data.dim(), 43u);
  EXPECT_DOUBLE_EQ(data.instances()[0].label, 1.0);
  EXPECT_DOUBLE_EQ(data.instances()[1].label, -1.0);
  EXPECT_DOUBLE_EQ(data.instances()[2].label, -1.0);  // 0 -> -1.
  ASSERT_EQ(data.instances()[0].features.size(), 3u);
  EXPECT_EQ(data.instances()[0].features[2].index, 42u);
  EXPECT_FLOAT_EQ(data.instances()[0].features[2].value, 2.5f);
}

TEST(LibSvmParseTest, SortsUnorderedFeatures) {
  auto result = ParseLibSvm("+1 9:1 3:2 5:3\n");
  ASSERT_TRUE(result.ok());
  const auto& feats = result->instances()[0].features;
  EXPECT_EQ(feats[0].index, 3u);
  EXPECT_EQ(feats[1].index, 5u);
  EXPECT_EQ(feats[2].index, 9u);
}

TEST(LibSvmParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseLibSvm("+1 not-a-feature\n").ok());
  EXPECT_FALSE(ParseLibSvm("abc 1:2\n").ok());
}

TEST(LibSvmParseTest, MissingFileIsIoError) {
  auto result = ReadLibSvmFile("/nonexistent/path/data.libsvm");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIoError);
}

TEST(DatasetTest, SplitPreservesCountsAndDim) {
  SyntheticConfig config;
  config.num_instances = 1000;
  config.dim = 1 << 12;
  Dataset data = GenerateSynthetic(config);
  auto [train, test] = data.Split(0.25);
  EXPECT_EQ(train.size(), 750u);
  EXPECT_EQ(test.size(), 250u);
  EXPECT_EQ(train.dim(), data.dim());
  EXPECT_EQ(test.dim(), data.dim());
}

TEST(DatasetTest, AvgNnz) {
  std::vector<Instance> instances(2);
  instances[0].features = {{1, 1.0f}, {2, 1.0f}};
  instances[1].features = {{3, 1.0f}, {4, 1.0f}, {5, 1.0f}, {6, 1.0f}};
  Dataset data(std::move(instances), 10);
  EXPECT_DOUBLE_EQ(data.AvgNnz(), 3.0);
}

TEST(SyntheticTest, DeterministicForFixedSeed) {
  SyntheticConfig config;
  config.num_instances = 100;
  config.dim = 1 << 10;
  config.seed = 7;
  Dataset a = GenerateSynthetic(config);
  Dataset b = GenerateSynthetic(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instances()[i].label, b.instances()[i].label);
    ASSERT_EQ(a.instances()[i].features.size(),
              b.instances()[i].features.size());
  }
}

TEST(SyntheticTest, RespectsShapeParameters) {
  SyntheticConfig config;
  config.num_instances = 2000;
  config.dim = 1 << 16;
  config.avg_nnz = 50;
  Dataset data = GenerateSynthetic(config);
  EXPECT_EQ(data.size(), 2000u);
  EXPECT_EQ(data.dim(), 1u << 16);
  EXPECT_NEAR(data.AvgNnz(), 50.0, 10.0);
  for (const auto& inst : data.instances()) {
    EXPECT_TRUE(inst.label == 1.0 || inst.label == -1.0);
    for (size_t i = 1; i < inst.features.size(); ++i) {
      EXPECT_LT(inst.features[i - 1].index, inst.features[i].index);
    }
  }
}

TEST(SyntheticTest, RegressionLabelsAreContinuous) {
  SyntheticConfig config;
  config.num_instances = 500;
  config.dim = 1 << 12;
  config.regression = true;
  Dataset data = GenerateSynthetic(config);
  int non_binary = 0;
  for (const auto& inst : data.instances()) {
    if (inst.label != 1.0 && inst.label != -1.0) ++non_binary;
  }
  EXPECT_GT(non_binary, 400);
}

TEST(SyntheticTest, LabelsAreLearnableSignal) {
  // A dataset with label noise 0 must be (mostly) linearly separable by
  // the ground-truth model — sanity that labels are not random.
  SyntheticConfig config;
  config.num_instances = 2000;
  config.dim = 1 << 14;
  config.label_noise = 0.0;
  Dataset data = GenerateSynthetic(config);
  int positive = 0;
  for (const auto& inst : data.instances()) positive += inst.label > 0;
  // Both classes present, neither degenerate.
  EXPECT_GT(positive, 200);
  EXPECT_LT(positive, 1800);
}

TEST(SyntheticTest, PresetsHaveDistinctDensityRegimes) {
  const auto kdd10 = PresetFor("kdd10");
  const auto kdd12 = PresetFor("kdd12");
  const auto ctr = PresetFor("ctr");
  EXPECT_LT(kdd12.avg_nnz, ctr.avg_nnz);  // CTR is denser (§4.3.2).
  EXPECT_GT(kdd12.dim, kdd10.dim);        // KDD12 has more features.
  const auto fallback = PresetFor("unknown");
  EXPECT_EQ(fallback.num_instances, SyntheticConfig().num_instances);
}

TEST(LibSvmWriteTest, RoundTripsThroughDisk) {
  SyntheticConfig config;
  config.num_instances = 200;
  config.dim = 1 << 10;
  config.seed = 53;
  const Dataset original = GenerateSynthetic(config);
  const std::string path = ::testing::TempDir() + "/roundtrip.libsvm";
  ASSERT_TRUE(WriteLibSvmFile(original, path).ok());
  auto loaded = ReadLibSvmFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.instances()[i];
    const auto& b = loaded->instances()[i];
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.features.size(), b.features.size());
    for (size_t f = 0; f < a.features.size(); ++f) {
      EXPECT_EQ(a.features[f].index, b.features[f].index);
      EXPECT_FLOAT_EQ(a.features[f].value, b.features[f].value);
    }
  }
}

TEST(LibSvmWriteTest, UnwritablePathIsIoError) {
  const Dataset data({}, 1);
  EXPECT_EQ(WriteLibSvmFile(data, "/nonexistent/dir/out.libsvm").code(),
            common::StatusCode::kIoError);
}

TEST(SyntheticMnistTest, ShapeAndLabels) {
  Dataset data = GenerateSyntheticMnist(200, 20, 10, 3);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.dim(), 400u);
  for (const auto& inst : data.instances()) {
    EXPECT_GE(inst.label, 0.0);
    EXPECT_LT(inst.label, 10.0);
    EXPECT_GT(inst.features.size(), 100u);  // Mostly dense images.
  }
}

}  // namespace
}  // namespace sketchml::ml
