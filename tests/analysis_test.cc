// Golden-fixture tests for tools/sketchml_analyze.
//
// Each pass has a fixture tree under tests/analysis_fixtures/: a
// `<pass>_bad/` whose findings (and exit code 1) are pinned exactly, a
// `<pass>_clean/` that must come back empty, plus trees exercising the
// baseline escape hatch (suppression, staleness, malformed entries) and
// the flag surface (--pass filter, --docs opt-out, --replay-entry).
// The tests shell out to the real binary so exit codes and output
// format are pinned, not just the pass logic.
//
// Paths are injected by CMake: SKETCHML_ANALYZE_BINARY points at the
// built tool, SKETCHML_ANALYSIS_FIXTURE_DIR at tests/analysis_fixtures.

#include <array>
#include <cstdio>
#include <string>

#include "gtest/gtest.h"

#ifndef SKETCHML_ANALYZE_BINARY
#error "build must define SKETCHML_ANALYZE_BINARY"
#endif
#ifndef SKETCHML_ANALYSIS_FIXTURE_DIR
#error "build must define SKETCHML_ANALYSIS_FIXTURE_DIR"
#endif

namespace {

struct AnalyzeRun {
  int exit_code = -1;
  std::string output;  // stdout: one finding per line.
};

AnalyzeRun RunAnalyze(const std::string& args) {
  const std::string cmd =
      std::string(SKETCHML_ANALYZE_BINARY) + " " + args + " 2>/dev/null";
  AnalyzeRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  const int raw = pclose(pipe);
  run.exit_code = raw >= 0 ? WEXITSTATUS(raw) : -1;
  return run;
}

std::string Root(const std::string& fixture) {
  return "--root=" + std::string(SKETCHML_ANALYSIS_FIXTURE_DIR) + "/" +
         fixture;
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  return lines;
}

void ExpectFinding(const AnalyzeRun& run, const std::string& needle) {
  EXPECT_NE(run.output.find(needle), std::string::npos)
      << "missing \"" << needle << "\" in output:\n"
      << run.output;
}

void ExpectClean(const std::string& args) {
  const AnalyzeRun run = RunAnalyze(args);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(AnalyzeTest, LayeringViolationAndCycle) {
  const AnalyzeRun run = RunAnalyze(Root("layering_bad") + " --pass=layering");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountLines(run.output), 2u) << run.output;
  ExpectFinding(run, "layer 'sketch' may not include \"core/engine.h\"");
  ExpectFinding(run,
                "include cycle: src/common/cycle_a.h -> src/common/cycle_b.h "
                "-> src/common/cycle_a.h");
  // Findings carry their baseline key so escapes are copy-pasteable.
  ExpectFinding(run, "(baseline key: src/sketch/uses_core.cc->core/engine.h)");
}

TEST(AnalyzeTest, LayeringClean) {
  // No --pass: the clean tree must survive all four passes.
  ExpectClean(Root("layering_clean"));
}

TEST(AnalyzeTest, BaselineSuppressesFinding) {
  // tools/analysis_baseline.txt inside the fixture root is discovered
  // automatically and covers the one layering violation.
  ExpectClean(Root("layering_baseline"));
}

TEST(AnalyzeTest, StaleBaselineEntryIsAFinding) {
  const AnalyzeRun run = RunAnalyze(Root("stale_baseline"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountLines(run.output), 1u) << run.output;
  ExpectFinding(run, "stale baseline entry");
}

TEST(AnalyzeTest, WireSequenceMismatchAndMissingReader) {
  const AnalyzeRun run = RunAnalyze(Root("wire_bad") + " --pass=wire");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountLines(run.output), 2u) << run.output;
  ExpectFinding(run,
                "demo::ShardState::Serialize writes [u32,u64] but "
                "demo::ShardState::Deserialize reads [u32]");
  ExpectFinding(run, "SaveState in ClockState has no matching RestoreState");
}

TEST(AnalyzeTest, WireClean) { ExpectClean(Root("wire_clean")); }

TEST(AnalyzeTest, NamesOrphanWithNearMissAndDocsDrift) {
  const AnalyzeRun run = RunAnalyze(Root("names_bad") + " --pass=names");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountLines(run.output), 2u) << run.output;
  ExpectFinding(run,
                "consumed metric \"trainer/steps\" has no registration site; "
                "did you mean \"trainer/step\"?");
  ExpectFinding(run, "documented metric \"foo/bar_seconds\"");
  ExpectFinding(run, "docs/metrics.md:4");
}

TEST(AnalyzeTest, NamesClean) { ExpectClean(Root("names_clean")); }

TEST(AnalyzeTest, NamesDocsScanOptOut) {
  // `--docs=` (empty) disables doc scanning: only the code orphan stays.
  const AnalyzeRun run =
      RunAnalyze(Root("names_bad") + " --pass=names --docs=");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountLines(run.output), 1u) << run.output;
  EXPECT_EQ(run.output.find("documented metric"), std::string::npos)
      << run.output;
}

TEST(AnalyzeTest, ReplayWallClockOnCriticalPath) {
  const AnalyzeRun run = RunAnalyze(Root("replay_bad") + " --pass=replay");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountLines(run.output), 1u) << run.output;
  ExpectFinding(run, "replay-critical path uses steady_clock");
  // The finding carries the shortest witness path from the entry point.
  ExpectFinding(run, "demo::EncodeImpl -> demo::TimedHelper");
}

TEST(AnalyzeTest, ReplayUnreachableTaintIsClean) {
  ExpectClean(Root("replay_clean") + " --pass=replay");
}

TEST(AnalyzeTest, ReplayCustomEntryPoint) {
  // Naming the tainted function as an entry flips the same tree to 1.
  const AnalyzeRun run = RunAnalyze(
      Root("replay_clean") + " --pass=replay --replay-entry=WallClockDebugOnly");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  ExpectFinding(run, "demo::WallClockDebugOnly");
}

TEST(AnalyzeTest, PassFilterSkipsOtherPasses) {
  // wire_bad has wire findings only; a layering-only run is clean.
  ExpectClean(Root("wire_bad") + " --pass=layering");
}

TEST(AnalyzeTest, ListPasses) {
  const AnalyzeRun run = RunAnalyze("--list-passes");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* id : {"layering", "wire", "names", "replay"}) {
    EXPECT_NE(run.output.find(id), std::string::npos) << run.output;
  }
}

TEST(AnalyzeTest, ConfigErrorsExitTwo) {
  EXPECT_EQ(RunAnalyze("--pass=nosuch").exit_code, 2);
  EXPECT_EQ(RunAnalyze("--root=/no/such/dir").exit_code, 2);
  EXPECT_EQ(RunAnalyze("--no-such-flag").exit_code, 2);
  // Malformed baseline (entry without justification) is a config error,
  // not a silent accept.
  EXPECT_EQ(RunAnalyze(Root("bad_baseline")).exit_code, 2);
}

}  // namespace
