// Wire-format regression tests: golden CRCs of encoded messages for
// fixed inputs and seeds. If any of these change, the wire format has
// changed — bump `kWireVersion` (or the codec's framing) and regenerate
// the constants, because old messages will no longer decode.

#include <gtest/gtest.h>

#include <cstdint>

#include "common/crc32.h"
#include "core/sketchml.h"

namespace sketchml {
namespace {

common::SparseGradient GoldenGradient() {
  common::SparseGradient grad;
  for (uint64_t i = 0; i < 64; ++i) {
    const double v =
        (i % 3 == 0 ? -1.0 : 1.0) * (0.001 * static_cast<double>(i + 1));
    grad.push_back({i * 37 + 5, v});
  }
  return grad;
}

TEST(WireFormatTest, SketchMlGolden) {
  core::SketchMlConfig config;
  config.seed = 7;
  core::SketchMlCodec codec(config);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(GoldenGradient(), &msg).ok());
  EXPECT_EQ(msg.size(), 479u);
  EXPECT_EQ(common::Crc32(msg.bytes), 0xDB74F99Du);
}

TEST(WireFormatTest, DeltaBinaryKeysGolden) {
  common::ByteWriter writer;
  ASSERT_TRUE(compress::DeltaBinaryKeyCodec::Encode(
                  common::Keys(GoldenGradient()), &writer)
                  .ok());
  EXPECT_EQ(writer.size(), 81u);
  EXPECT_EQ(common::Crc32(writer.buffer()), 0x9957ECE3u);
}

TEST(WireFormatTest, ZipMlGolden) {
  compress::ZipMlCodec codec(16, /*seed=*/24);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(GoldenGradient(), &msg).ok());
  EXPECT_EQ(msg.size(), 402u);
  EXPECT_EQ(common::Crc32(msg.bytes), 0x3AF041E3u);
}

TEST(WireFormatTest, GoldenMessagesStillDecode) {
  // Beyond byte identity: the golden messages decode to the golden keys.
  core::SketchMlConfig config;
  config.seed = 7;
  core::SketchMlCodec codec(config);
  compress::EncodedGradient msg;
  const auto grad = GoldenGradient();
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(core::SketchMlCodec().Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ(decoded[i].key, grad[i].key);
  }
}

}  // namespace
}  // namespace sketchml
