#include "compress/quantile_bucket_quantizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/byte_buffer.h"
#include "common/random.h"

namespace sketchml::compress {
namespace {

std::vector<double> SkewedGradientValues(size_t n, uint64_t seed) {
  // Mimic Figure 4: most values tiny, a few large.
  common::Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(rng.NextBernoulli(0.95) ? rng.NextGaussian() * 0.01
                                             : rng.NextGaussian() * 0.3);
  }
  return values;
}

TEST(QuantileBucketQuantizerTest, PaperFigure3Example) {
  // Splits {-0.3, -0.1, 0, 0.1, 0.3} -> means {-0.2, -0.05, 0.05, 0.2}.
  QuantileBucketQuantizer quantizer({-0.3, -0.1, 0.0, 0.1, 0.3});
  ASSERT_EQ(quantizer.num_buckets(), 4);
  EXPECT_DOUBLE_EQ(quantizer.MeanOf(0), -0.2);
  EXPECT_DOUBLE_EQ(quantizer.MeanOf(1), -0.05);
  EXPECT_DOUBLE_EQ(quantizer.MeanOf(2), 0.05);
  EXPECT_DOUBLE_EQ(quantizer.MeanOf(3), 0.2);
  // The paper's worked values: 0.21 -> bucket 3, -0.01 -> bucket 1, etc.
  EXPECT_EQ(quantizer.BucketOf(0.21), 3);
  EXPECT_EQ(quantizer.BucketOf(-0.01), 1);
  EXPECT_EQ(quantizer.BucketOf(0.08), 2);
  EXPECT_EQ(quantizer.BucketOf(-0.05), 1);
  EXPECT_EQ(quantizer.BucketOf(-0.12), 0);
  EXPECT_EQ(quantizer.BucketOf(0.29), 3);
  EXPECT_EQ(quantizer.BucketOf(0.02), 2);
  EXPECT_EQ(quantizer.BucketOf(-0.27), 0);
}

TEST(QuantileBucketQuantizerTest, OutOfRangeValuesClampToEdgeBuckets) {
  QuantileBucketQuantizer quantizer({0.0, 1.0, 2.0});
  EXPECT_EQ(quantizer.BucketOf(-5.0), 0);
  EXPECT_EQ(quantizer.BucketOf(99.0), 1);
  EXPECT_EQ(quantizer.BucketOf(2.0), 1);  // Max is closed above.
}

TEST(QuantileBucketQuantizerTest, BucketsHaveEqualPopulation) {
  const auto values = SkewedGradientValues(50000, 109);
  const int q = 64;
  auto quantizer = QuantileBucketQuantizer::Build(values, q, 256);
  std::vector<int> counts(q, 0);
  for (double v : values) ++counts[quantizer.BucketOf(v)];
  const double expected = static_cast<double>(values.size()) / q;
  int within = 0;
  for (int c : counts) {
    if (std::abs(c - expected) < expected * 0.5) ++within;
  }
  // Equal-depth property: the vast majority of buckets near d/q items.
  EXPECT_GT(within, q * 3 / 4);
}

TEST(QuantileBucketQuantizerTest, QuantizeIsIdempotent) {
  const auto values = SkewedGradientValues(10000, 113);
  auto quantizer = QuantileBucketQuantizer::Build(values, 32);
  for (double v : {-0.5, -0.01, 0.0, 0.003, 0.2}) {
    const double once = quantizer.Quantize(v);
    // A bucket mean may fall into a neighboring bucket (means are not
    // fixed points in general), but quantizing twice must be stable in
    // value distance.
    const double twice = quantizer.Quantize(once);
    EXPECT_LE(std::abs(twice - once), std::abs(once - v) + 1e-12);
  }
}

TEST(QuantileBucketQuantizerTest, VarianceBoundTheoremA2) {
  // Theorem A.2: E||g - g~||^2 <= d/(4q) * (phi_min^2 + phi_max^2).
  for (int q : {16, 64, 256}) {
    const auto values = SkewedGradientValues(20000, 127 + q);
    auto quantizer = QuantileBucketQuantizer::Build(values, q, 512);
    double err = 0.0;
    double lo = values[0], hi = values[0];
    for (double v : values) {
      const double diff = v - quantizer.Quantize(v);
      err += diff * diff;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double bound =
        static_cast<double>(values.size()) / (4.0 * q) * (lo * lo + hi * hi);
    EXPECT_LE(err, bound) << "q=" << q;
  }
}

TEST(QuantileBucketQuantizerTest, QuantileBeatsUniformOnNearZeroMass) {
  // The motivating claim of §3.2: uniform (equal-width) buckets waste all
  // their resolution on the sparse tails, so the near-zero bulk of the
  // gradient distribution — the values that matter near convergence — is
  // quantized with error larger than the values themselves. Equal-depth
  // buckets concentrate resolution where the mass is.
  const auto values = SkewedGradientValues(30000, 131);
  const int q = 32;
  auto quantile = QuantileBucketQuantizer::Build(values, q, 512);

  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  std::vector<double> uniform_splits;
  for (int i = 0; i <= q; ++i) {
    uniform_splits.push_back(*lo_it + (*hi_it - *lo_it) * i / q);
  }
  QuantileBucketQuantizer uniform(uniform_splits);

  // Median/p90 absolute error over the 95 % near-zero mass (|v| < 0.03).
  // (The L2 *sum* is dominated by the edge buckets, which both schemes
  // resolve poorly; the typical value is what drives SGD convergence.)
  std::vector<double> err_quantile, err_uniform;
  for (double v : values) {
    if (std::abs(v) >= 0.03) continue;
    err_quantile.push_back(std::abs(v - quantile.Quantize(v)));
    err_uniform.push_back(std::abs(v - uniform.Quantize(v)));
  }
  ASSERT_GT(err_quantile.size(), values.size() / 2);
  std::sort(err_quantile.begin(), err_quantile.end());
  std::sort(err_uniform.begin(), err_uniform.end());
  const size_t mid = err_quantile.size() / 2;
  const size_t p90 = err_quantile.size() * 9 / 10;
  EXPECT_LT(err_quantile[mid], err_uniform[mid] / 10);
  EXPECT_LT(err_quantile[p90], err_uniform[p90] / 10);
}

TEST(QuantileBucketQuantizerTest, ConstantValuesCollapseGracefully) {
  std::vector<double> values(100, 0.25);
  auto quantizer = QuantileBucketQuantizer::Build(values, 8);
  EXPECT_DOUBLE_EQ(quantizer.Quantize(0.25), 0.25);
}

TEST(QuantileBucketQuantizerTest, SingleValueStream) {
  auto quantizer = QuantileBucketQuantizer::Build({1.5}, 4);
  const int bucket = quantizer.BucketOf(1.5);
  EXPECT_GE(bucket, 0);
  EXPECT_LT(bucket, 4);
  EXPECT_DOUBLE_EQ(quantizer.Quantize(1.5), 1.5);
}

TEST(QuantileBucketQuantizerTest, MeansSerializationRoundTrips) {
  const auto values = SkewedGradientValues(5000, 137);
  auto quantizer = QuantileBucketQuantizer::Build(values, 16);
  common::ByteWriter writer;
  quantizer.SerializeMeans(&writer);
  // 16 means * 4 bytes (float32) + varint count.
  EXPECT_EQ(writer.size(), 16u * 4u + 1u);

  common::ByteReader reader(writer.buffer());
  QuantileBucketQuantizer restored({0.0, 1.0});
  ASSERT_TRUE(
      QuantileBucketQuantizer::DeserializeMeans(&reader, &restored).ok());
  ASSERT_EQ(restored.num_buckets(), 16);
  for (int b = 0; b < 16; ++b) {
    EXPECT_EQ(restored.MeanOf(b),
              static_cast<double>(static_cast<float>(quantizer.MeanOf(b))));
  }
}

TEST(QuantileBucketQuantizerTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0x00};  // Count 0 is invalid.
  common::ByteReader reader(junk.data(), junk.size());
  QuantileBucketQuantizer out({0.0, 1.0});
  EXPECT_FALSE(QuantileBucketQuantizer::DeserializeMeans(&reader, &out).ok());
}

TEST(QuantileBucketQuantizerTest, RejectsUnsortedSplits) {
  EXPECT_DEATH(QuantileBucketQuantizer({1.0, 0.0}), "");
}

TEST(QuantileBucketQuantizerTest, GkBackendAlsoEqualizesPopulation) {
  const auto values = SkewedGradientValues(30000, 149);
  const int q = 32;
  auto quantizer = QuantileBucketQuantizer::Build(
      values, q, 256, 1, QuantileBucketQuantizer::Backend::kGk);
  std::vector<int> counts(q, 0);
  for (double v : values) ++counts[quantizer.BucketOf(v)];
  const double expected = static_cast<double>(values.size()) / q;
  int within = 0;
  for (int c : counts) {
    if (std::abs(c - expected) < expected * 0.5) ++within;
  }
  EXPECT_GT(within, q * 3 / 4);
}

TEST(QuantileBucketQuantizerTest, BackendsAgreeOnSkewedData) {
  const auto values = SkewedGradientValues(20000, 151);
  auto kll = QuantileBucketQuantizer::Build(
      values, 64, 256, 1, QuantileBucketQuantizer::Backend::kKll);
  auto gk = QuantileBucketQuantizer::Build(
      values, 64, 256, 1, QuantileBucketQuantizer::Backend::kGk);
  // Same data, same bucket count: quantized outputs should be close for
  // typical values.
  std::vector<double> diffs;
  for (double v : {-0.02, -0.005, 0.0, 0.003, 0.01}) {
    diffs.push_back(std::abs(kll.Quantize(v) - gk.Quantize(v)));
  }
  for (double d : diffs) EXPECT_LT(d, 0.005);
}

}  // namespace
}  // namespace sketchml::compress
