#include "sketch/count_min_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace sketchml::sketch {
namespace {

TEST(CountMinSketchTest, ExactWhenNoCollisions) {
  CountMinSketch sketch(4, 1024);
  sketch.Add(1, 5);
  sketch.Add(2, 3);
  EXPECT_EQ(sketch.Query(1), 5u);
  EXPECT_EQ(sketch.Query(2), 3u);
  EXPECT_EQ(sketch.TotalInsertions(), 8u);
}

TEST(CountMinSketchTest, NeverUnderestimates) {
  CountMinSketch sketch(3, 64);  // Deliberately tiny: many collisions.
  common::Rng rng(61);
  std::vector<uint64_t> truth(500, 0);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(500);
    ++truth[key];
    sketch.Add(key);
  }
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_GE(sketch.Query(key), truth[key]) << "key " << key;
  }
}

TEST(CountMinSketchTest, ErrorBoundHolds) {
  // With cols = ceil(e / eps), overestimation error <= eps * N with
  // probability >= 1 - exp(-rows).
  const double eps = 0.01;
  const int cols = static_cast<int>(std::ceil(std::exp(1.0) / eps));
  CountMinSketch sketch(5, cols);
  common::Rng rng(67);
  std::vector<uint64_t> truth(2000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t key = rng.NextBounded(2000);
    ++truth[key];
    sketch.Add(key);
  }
  int violations = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    if (sketch.Query(key) > truth[key] + static_cast<uint64_t>(eps * n)) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 20);  // << 1 % of keys.
}

TEST(CountMinSketchTest, QueryUnknownKeyReturnsSmallValue) {
  CountMinSketch sketch(4, 4096);
  for (uint64_t k = 0; k < 100; ++k) sketch.Add(k);
  // A key never inserted should alias to near-zero counts.
  EXPECT_LE(sketch.Query(999999), 2u);
}

TEST(CountMinSketchTest, AdditiveInsertionAmplifiesValues) {
  // The paper's negative result (§3.3): storing bucket *indexes* with the
  // additive Count-Min strategy inflates them unpredictably under
  // collisions, whereas MinMaxSketch may only decay them. Reproduce the
  // inflation here: insert 1000 keys carrying "index" payloads into a
  // cramped sketch and count decoded values that exceed the original.
  CountMinSketch sketch(2, 200);  // Load factor 5, like d/5 columns.
  common::Rng rng(71);
  std::vector<uint64_t> payload(1000);
  for (uint64_t key = 0; key < 1000; ++key) {
    payload[key] = rng.NextBounded(256);
    sketch.Add(key, payload[key]);
  }
  int amplified = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (sketch.Query(key) > payload[key]) ++amplified;
  }
  // Most queries come back inflated — the amplification SketchML avoids.
  EXPECT_GT(amplified, 500);
}

TEST(CountMinSketchTest, SizeBytes) {
  CountMinSketch sketch(3, 100);
  EXPECT_EQ(sketch.SizeBytes(), 3u * 100u * sizeof(uint64_t));
}

TEST(CountMinSketchTest, RejectsBadShape) {
  EXPECT_DEATH(CountMinSketch(0, 10), "");
  EXPECT_DEATH(CountMinSketch(10, 0), "");
}

}  // namespace
}  // namespace sketchml::sketch
