#include "core/sketchml_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/sparse.h"
#include "compress/raw_codec.h"
#include "core/sketchml_config.h"

namespace sketchml::core {
namespace {

common::SparseGradient MakeGradient(size_t count, uint64_t dim, uint64_t seed,
                                    double big_fraction = 0.1) {
  common::Rng rng(seed);
  common::SparseGradient grad;
  std::set<uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(dim));
  for (uint64_t key : keys) {
    const double v = rng.NextBernoulli(1.0 - big_fraction)
                         ? rng.NextGaussian() * 0.01
                         : rng.NextGaussian() * 0.3;
    grad.push_back({key, v});
  }
  return grad;
}

TEST(SketchMlConfigTest, DefaultsAreValid) {
  SketchMlConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.num_buckets, 256);
  EXPECT_EQ(config.num_groups, 8);
  EXPECT_EQ(config.rows, 2);
  EXPECT_DOUBLE_EQ(config.col_ratio, 0.2);
}

TEST(SketchMlConfigTest, RejectsBadValues) {
  SketchMlConfig config;
  config.num_buckets = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = SketchMlConfig();
  config.num_buckets = 300;
  EXPECT_FALSE(config.Validate().ok());
  config = SketchMlConfig();
  config.num_groups = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SketchMlConfig();
  config.num_groups = 512;
  EXPECT_FALSE(config.Validate().ok());
  config = SketchMlConfig();
  config.rows = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SketchMlConfig();
  config.col_ratio = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SketchMlConfig();
  config.quantile_sketch_k = 2;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SketchMlCodecTest, KeysRoundTripExactly) {
  SketchMlCodec codec;
  const auto grad = MakeGradient(5000, 1 << 24, 179);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(decoded[i].key, grad[i].key) << "key corrupted at " << i;
  }
}

TEST(SketchMlCodecTest, SignsNeverFlip) {
  // §3.3 Problem 1 / Solution 1: with separated positive and negative
  // streams, decoding can shrink magnitudes but never reverse signs.
  SketchMlCodec codec;
  const auto grad = MakeGradient(8000, 1 << 22, 181);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  for (size_t i = 0; i < grad.size(); ++i) {
    if (grad[i].value >= 0) {
      EXPECT_GE(decoded[i].value, 0.0) << "sign flipped at " << i;
    } else {
      EXPECT_LE(decoded[i].value, 0.0) << "sign flipped at " << i;
    }
  }
}

TEST(SketchMlCodecTest, MagnitudesDecayTowardZeroNeverAmplifyBeyondBucket) {
  // MinMax decoding returns a bucket index <= the inserted one, so the
  // decoded magnitude is at most the quantized magnitude of the original
  // value — which itself is at most one bucket above the true value.
  SketchMlConfig config;
  config.num_buckets = 256;
  SketchMlCodec codec(config);
  const auto grad = MakeGradient(6000, 1 << 22, 191);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());

  double max_abs = 0.0;
  for (const auto& p : grad) max_abs = std::max(max_abs, std::abs(p.value));
  for (size_t i = 0; i < grad.size(); ++i) {
    // Decoded magnitude never exceeds the global max magnitude (no
    // amplification past the largest bucket mean).
    EXPECT_LE(std::abs(decoded[i].value), max_abs + 1e-12);
  }
}

TEST(SketchMlCodecTest, CompressionRateBeatsRawByFactorFive) {
  // Figure 8(b): SketchML compresses LR gradients ~7x vs raw 12d bytes.
  // The paper's 1.27-bytes-per-key regime needs d/D > r/256 (Appendix
  // A.3), i.e. gradients at a few percent density — use d/D ≈ 4 %.
  SketchMlCodec codec;
  const auto grad = MakeGradient(40000, 1 << 19, 193);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  const double raw_bytes = static_cast<double>(grad.size()) * 12.0;
  const double rate = raw_bytes / static_cast<double>(msg.size());
  EXPECT_GT(rate, 5.0) << "compression rate only " << rate;
}

TEST(SketchMlCodecTest, VerySparseGradientsStillBeatRawByFactorThree) {
  // At d/D ≈ 0.1 % the per-group deltas grow to ~2 bytes (A.3's
  // log2(rD/d)/8 term) and the rate drops but stays well above raw.
  SketchMlCodec codec;
  const auto grad = MakeGradient(20000, 1 << 24, 194);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  const double rate =
      static_cast<double>(grad.size()) * 12.0 / static_cast<double>(msg.size());
  EXPECT_GT(rate, 3.0) << "compression rate only " << rate;
}

TEST(SketchMlCodecTest, SpaceCostBreakdownSumsToMessageSize) {
  SketchMlCodec codec;
  const auto grad = MakeGradient(5000, 1 << 22, 197);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  const SpaceCost& cost = codec.last_space_cost();
  // Everything except the per-stream count varints is attributed; allow
  // a few bytes of slack for those.
  EXPECT_LE(cost.Total(), msg.size());
  EXPECT_GE(cost.Total() + 16, msg.size());
  EXPECT_GT(cost.key_bytes, 0u);
  EXPECT_GT(cost.sketch_bytes, 0u);
  EXPECT_GT(cost.bucket_mean_bytes, 0u);
}

TEST(SketchMlCodecTest, ValueErrorBoundedByGroupRange) {
  // With grouping, a decoded index stays in the true index's group, so
  // the decoded value is at least the group's smallest mean.
  SketchMlConfig config;
  config.num_buckets = 256;
  config.num_groups = 8;
  SketchMlCodec codec(config);
  const auto grad = MakeGradient(10000, 1 << 22, 199);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());

  // Relative check: decoded magnitude within the quantized value's group
  // implies |decoded| <= |original quantized| and both share sign; verify
  // the aggregate relative L2 error is moderate.
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < grad.size(); ++i) {
    num += std::pow(grad[i].value - decoded[i].value, 2);
    den += std::pow(grad[i].value, 2);
  }
  EXPECT_LT(num / den, 0.9);  // Far from total information loss.
}

TEST(SketchMlCodecTest, EmptyGradient) {
  SketchMlCodec codec;
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode({}, &msg).ok());
  common::SparseGradient decoded = {{1, 1.0}};
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(SketchMlCodecTest, AllPositiveGradient) {
  SketchMlCodec codec;
  common::SparseGradient grad;
  common::Rng rng(211);
  for (uint64_t i = 0; i < 1000; ++i) {
    grad.push_back({i * 3, std::abs(rng.NextGaussian()) + 1e-6});
  }
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (const auto& p : decoded) EXPECT_GE(p.value, 0.0);
}

TEST(SketchMlCodecTest, AllNegativeGradient) {
  SketchMlCodec codec;
  common::SparseGradient grad;
  common::Rng rng(223);
  for (uint64_t i = 0; i < 1000; ++i) {
    grad.push_back({i * 7 + 2, -std::abs(rng.NextGaussian()) - 1e-6});
  }
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (const auto& p : decoded) EXPECT_LE(p.value, 0.0);
}

TEST(SketchMlCodecTest, SingleElementGradient) {
  SketchMlCodec codec;
  common::SparseGradient grad = {{42, -0.125}};
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key, 42u);
  EXPECT_NEAR(decoded[0].value, -0.125, 1e-9);
}

TEST(SketchMlCodecTest, RejectsUnsortedInput) {
  SketchMlCodec codec;
  compress::EncodedGradient msg;
  common::SparseGradient bad = {{9, 1.0}, {3, 2.0}};
  EXPECT_EQ(codec.Encode(bad, &msg).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SketchMlCodecTest, DecodeRejectsCorruption) {
  SketchMlCodec codec;
  const auto grad = MakeGradient(500, 1 << 18, 227);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;

  auto truncated = msg;
  truncated.bytes.resize(truncated.bytes.size() / 3);
  EXPECT_FALSE(codec.Decode(truncated, &decoded).ok());

  auto bad_version = msg;
  bad_version.bytes[0] = 0x7e;
  EXPECT_FALSE(codec.Decode(bad_version, &decoded).ok());

  compress::EncodedGradient empty;
  EXPECT_FALSE(codec.Decode(empty, &decoded).ok());
}

TEST(SketchMlCodecTest, WithoutSignSeparationSignsCanFlip) {
  // Ablation of §3.3 Problem 1: quantizing both signs together makes the
  // min-insert strategy walk decoded values toward the most negative
  // bucket, producing reversed gradients for some positive inputs.
  SketchMlConfig config;
  config.separate_signs = false;
  config.col_ratio = 0.05;  // Aggressive compression: many collisions.
  SketchMlCodec codec(config);
  const auto grad = MakeGradient(20000, 1 << 22, 229, 0.5);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  int flipped = 0;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (grad[i].value > 1e-6 && decoded[i].value < -1e-9) ++flipped;
  }
  EXPECT_GT(flipped, 0) << "expected reversed gradients without separation";
}

class SketchMlConfigSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(SketchMlConfigSweepTest, RoundTripsAcrossConfigs) {
  const auto [buckets, groups, rows, col_ratio] = GetParam();
  SketchMlConfig config;
  config.num_buckets = buckets;
  config.num_groups = groups;
  config.rows = rows;
  config.col_ratio = col_ratio;
  ASSERT_TRUE(config.Validate().ok());
  SketchMlCodec codec(config);
  const auto grad = MakeGradient(3000, 1 << 20,
                                 1000 + buckets + groups + rows);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(decoded[i].key, grad[i].key);
    EXPECT_EQ(decoded[i].value >= 0, grad[i].value >= 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SketchMlConfigSweepTest,
    ::testing::Values(std::make_tuple(256, 8, 2, 0.2),
                      std::make_tuple(128, 8, 2, 0.2),
                      std::make_tuple(256, 16, 4, 0.5),
                      std::make_tuple(256, 1, 2, 0.2),
                      std::make_tuple(64, 4, 1, 0.1),
                      std::make_tuple(16, 2, 3, 1.0),
                      std::make_tuple(2, 1, 1, 0.2)));

TEST(SketchMlCodecTest, LargerColumnBudgetReducesError) {
  // Figure 13 "Number of Sketch Col": d/2 columns beat d/5.
  const auto grad = MakeGradient(20000, 1 << 22, 233);
  double errs[2];
  int idx = 0;
  for (double ratio : {0.2, 0.5}) {
    SketchMlConfig config;
    config.col_ratio = ratio;
    SketchMlCodec codec(config);
    compress::EncodedGradient msg;
    ASSERT_TRUE(codec.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
    double err = 0.0;
    for (size_t i = 0; i < grad.size(); ++i) {
      err += std::pow(grad[i].value - decoded[i].value, 2);
    }
    errs[idx++] = err;
  }
  EXPECT_LT(errs[1], errs[0]);
}

TEST(SketchMlCodecTest, MoreGroupsReduceError) {
  // §3.3 Solution 2: grouping caps the index error at q/r.
  const auto grad = MakeGradient(20000, 1 << 22, 239);
  double errs[2];
  int idx = 0;
  for (int groups : {1, 16}) {
    SketchMlConfig config;
    config.num_groups = groups;
    config.col_ratio = 0.1;
    SketchMlCodec codec(config);
    compress::EncodedGradient msg;
    ASSERT_TRUE(codec.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
    double err = 0.0;
    for (size_t i = 0; i < grad.size(); ++i) {
      err += std::pow(grad[i].value - decoded[i].value, 2);
    }
    errs[idx++] = err;
  }
  EXPECT_LT(errs[1], errs[0]);
}

TEST(KeyOnlyCodecTest, LosslessRoundTrip) {
  KeyOnlyCodec codec;
  const auto grad = MakeGradient(4000, 1 << 18, 241);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_EQ(decoded, grad);
  EXPECT_TRUE(codec.IsLossless());
  // ~1.3 + 8 bytes/pair, below raw 12.
  EXPECT_LT(msg.size(), grad.size() * 10);
}

TEST(QuantileOnlyCodecTest, KeysExactValuesQuantized) {
  QuantileOnlyCodec codec;
  const auto grad = MakeGradient(4000, 1 << 24, 251);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(decoded[i].key, grad[i].key);
    EXPECT_EQ(decoded[i].value >= 0, grad[i].value >= 0);
  }
  // Quantile-only has *no* sketch decay: relative error is small.
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < grad.size(); ++i) {
    num += std::pow(grad[i].value - decoded[i].value, 2);
    den += std::pow(grad[i].value, 2);
  }
  EXPECT_LT(num / den, 0.05);
}

TEST(QuantileOnlyCodecTest, SmallerThanKeyOnlyLargerThanFull) {
  // Figure 8(b) ordering: Adam > Adam+Key > Adam+Key+Quan > full SketchML.
  const auto grad = MakeGradient(30000, 1 << 24, 257);
  compress::RawCodec raw;
  KeyOnlyCodec key_only;
  QuantileOnlyCodec quan;
  SketchMlCodec full;
  compress::EncodedGradient m_raw, m_key, m_quan, m_full;
  ASSERT_TRUE(raw.Encode(grad, &m_raw).ok());
  ASSERT_TRUE(key_only.Encode(grad, &m_key).ok());
  ASSERT_TRUE(quan.Encode(grad, &m_quan).ok());
  ASSERT_TRUE(full.Encode(grad, &m_full).ok());
  EXPECT_GT(m_raw.size(), m_key.size());
  EXPECT_GT(m_key.size(), m_quan.size());
  EXPECT_GT(m_quan.size(), m_full.size());
}

TEST(QuantileOnlyCodecTest, RejectsConfigsWhoseBucketsOverflowOneByte) {
  // Regression: the wire format stores each bucket index as a uint8_t.
  // A config that could produce more than 256 buckets used to truncate
  // indexes silently; Encode must reject it instead.
  SketchMlConfig config;
  config.num_buckets = 512;
  QuantileOnlyCodec codec(config);
  const auto grad = MakeGradient(4000, 1 << 24, 263);
  compress::EncodedGradient msg;
  const common::Status status = codec.Encode(grad, &msg);
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument)
      << status.ToString();
  EXPECT_TRUE(msg.bytes.empty());  // Nothing partially written.
}

TEST(QuantileOnlyCodecTest, ValidBoundaryBucketCountStillRoundTrips) {
  // 256 buckets is the largest count that fits one byte — must still
  // encode, decode, and reproduce every key.
  SketchMlConfig config;
  config.num_buckets = 256;
  QuantileOnlyCodec codec(config);
  const auto grad = MakeGradient(4000, 1 << 24, 269);
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ(decoded[i].key, grad[i].key);
  }
}

}  // namespace
}  // namespace sketchml::core
