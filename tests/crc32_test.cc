#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/sparse.h"
#include "compress/checksummed_codec.h"
#include "compress/raw_codec.h"
#include "core/sketchml_codec.h"

namespace sketchml::common {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical IEEE test vector.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
  const std::string a = "a";
  EXPECT_EQ(Crc32(a.data(), 1), 0xE8B7BE43u);
}

TEST(Crc32Test, SensitiveToEveryBit) {
  std::vector<uint8_t> data(64, 0xAA);
  const uint32_t baseline = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 7) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto copy = data;
      copy[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32(copy), baseline) << byte << ":" << bit;
    }
  }
}

TEST(ChecksummedCodecTest, RoundTripsAndNames) {
  compress::ChecksummedCodec codec(
      std::make_unique<compress::RawCodec>());
  EXPECT_EQ(codec.Name(), "adam-double+crc");
  EXPECT_TRUE(codec.IsLossless());

  SparseGradient grad = {{1, 0.5}, {9, -0.25}, {100, 3.0}};
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_EQ(decoded, grad);
}

TEST(ChecksummedCodecTest, DetectsEverySingleBitFlip) {
  compress::ChecksummedCodec codec(
      std::make_unique<core::SketchMlCodec>());
  Rng rng(349);
  SparseGradient grad;
  uint64_t key = 0;
  for (int i = 0; i < 500; ++i) {
    key += 1 + rng.NextBounded(50);
    grad.push_back({key, rng.NextGaussian() * 0.05});
  }
  compress::EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());

  SparseGradient decoded;
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = msg;
    const size_t pos = rng.NextBounded(corrupted.bytes.size());
    corrupted.bytes[pos] ^= static_cast<uint8_t>(1 << rng.NextBounded(8));
    const Status status = codec.Decode(corrupted, &decoded);
    ASSERT_FALSE(status.ok()) << "flip at byte " << pos << " undetected";
    EXPECT_EQ(status.code(), StatusCode::kCorruptedData);
  }
}

TEST(ChecksummedCodecTest, RejectsShortMessages) {
  compress::ChecksummedCodec codec(std::make_unique<compress::RawCodec>());
  compress::EncodedGradient tiny;
  tiny.bytes = {1, 2, 3};
  SparseGradient decoded;
  EXPECT_EQ(codec.Decode(tiny, &decoded).code(),
            StatusCode::kCorruptedData);
}

TEST(ChecksummedCodecTest, FrameOverheadIsEightBytes) {
  compress::RawCodec raw;
  compress::ChecksummedCodec framed(std::make_unique<compress::RawCodec>());
  SparseGradient grad = {{1, 1.0}, {2, 2.0}};
  compress::EncodedGradient plain, wrapped;
  ASSERT_TRUE(raw.Encode(grad, &plain).ok());
  ASSERT_TRUE(framed.Encode(grad, &wrapped).ok());
  EXPECT_EQ(wrapped.size(), plain.size() + 8);
}

}  // namespace
}  // namespace sketchml::common
