// Unit tests for src/analysis/project_model.h — the shared whole-project
// source model behind tools/sketchml_analyze. The fixture-driven
// analysis_test.cc pins the passes end to end; these tests pin the model
// itself: include extraction, the heuristic function scanner (scopes,
// owners, definition-vs-declaration), call-site indexing, and literal
// attachment.

#include "analysis/project_model.h"

#include <string>

#include "analysis/stripped_source.h"
#include "gtest/gtest.h"

namespace {

using sketchml::analysis::AddFileToModel;
using sketchml::analysis::FunctionDef;
using sketchml::analysis::ProjectModel;
using sketchml::analysis::StripToCode;

void AddFile(ProjectModel* model, const std::string& rel,
             const std::string& text) {
  AddFileToModel(StripToCode(rel, rel, text), model);
}

const FunctionDef* FindFn(const ProjectModel& model, const std::string& name) {
  const auto it = model.functions_by_name.find(name);
  if (it == model.functions_by_name.end() || it->second.empty()) {
    return nullptr;
  }
  return &model.functions[it->second.front()];
}

TEST(ProjectModelTest, ExtractsQuotedIncludesWithLines) {
  ProjectModel model;
  AddFile(&model, "src/core/a.cc",
          "#include \"common/util.h\"\n"
          "#include <vector>\n"
          "  #include \"core/a.h\"\n");
  ASSERT_EQ(model.files.size(), 1u);
  const auto& pf = model.files[0];
  ASSERT_EQ(pf.includes.size(), 2u);  // Angle includes are not project edges.
  EXPECT_EQ(pf.includes[0], "common/util.h");
  EXPECT_EQ(pf.include_lines[0], 1u);
  EXPECT_EQ(pf.includes[1], "core/a.h");
  EXPECT_EQ(pf.include_lines[1], 3u);
}

TEST(ProjectModelTest, IndexesFreeFunctionsMethodsAndOwners) {
  ProjectModel model;
  AddFile(&model, "src/core/b.cc",
          "namespace outer {\n"
          "\n"
          "int Free(int n) { return n; }\n"
          "\n"
          "class Widget {\n"
          " public:\n"
          "  void Inline() { count_ = 0; }\n"
          "  void Declared(int x);\n"
          "};\n"
          "\n"
          "void Widget::Declared(int x) { count_ = x; }\n"
          "\n"
          "}  // namespace outer\n");
  const FunctionDef* free_fn = FindFn(model, "Free");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->qualified, "outer::Free");
  EXPECT_EQ(free_fn->owner, "");

  const FunctionDef* inline_fn = FindFn(model, "Inline");
  ASSERT_NE(inline_fn, nullptr);
  EXPECT_EQ(inline_fn->qualified, "outer::Widget::Inline");
  EXPECT_EQ(inline_fn->owner, "Widget");

  // `void Declared(int x);` inside the class is a declaration; only the
  // out-of-class definition is indexed — exactly once, with the
  // qualifier as owner.
  const auto it = model.functions_by_name.find("Declared");
  ASSERT_NE(it, model.functions_by_name.end());
  ASSERT_EQ(it->second.size(), 1u);
  const FunctionDef& declared = model.functions[it->second.front()];
  EXPECT_EQ(declared.owner, "Widget");
  EXPECT_EQ(declared.line, 11u);

  const auto methods = model.MethodsOf("Widget");
  EXPECT_EQ(methods.size(), 2u);
}

TEST(ProjectModelTest, RecordsCallSitesNotKeywords) {
  ProjectModel model;
  AddFile(&model, "src/core/c.cc",
          "void Caller() {\n"
          "  if (Check(1)) {\n"
          "    ns::Helper(2);\n"
          "  }\n"
          "  while (false) return;\n"
          "}\n");
  const FunctionDef* caller = FindFn(model, "Caller");
  ASSERT_NE(caller, nullptr);
  ASSERT_EQ(caller->calls.size(), 2u);
  EXPECT_EQ(caller->calls[0].name, "Check");
  EXPECT_EQ(caller->calls[0].line, 2u);
  EXPECT_EQ(caller->calls[1].name, "Helper");
  EXPECT_EQ(caller->calls[1].qualified, "ns::Helper");
}

TEST(ProjectModelTest, BodyRangeAndLiteralAttachment) {
  ProjectModel model;
  AddFile(&model, "src/core/d.cc",
          "int Outside() { return 0; }\n"
          "\n"
          "void Emit() {\n"
          "  Register(\"trainer/step\");\n"
          "}\n");
  const FunctionDef* emit = FindFn(model, "Emit");
  ASSERT_NE(emit, nullptr);
  EXPECT_EQ(emit->body_begin, 3u);
  EXPECT_EQ(emit->body_end, 5u);
  ASSERT_EQ(emit->literals.size(), 1u);
  EXPECT_EQ(emit->literals[0].first, "trainer/step");
  EXPECT_EQ(emit->literals[0].second, 4u);
  // The literal belongs to Emit, not to the earlier function.
  const FunctionDef* outside = FindFn(model, "Outside");
  ASSERT_NE(outside, nullptr);
  EXPECT_TRUE(outside->literals.empty());
}

TEST(ProjectModelTest, ConstructorInitializerListIsADefinition) {
  ProjectModel model;
  AddFile(&model, "src/core/e.cc",
          "class Gauge {\n"
          " public:\n"
          "  Gauge(int v) : value_(v), scaled_{v * 2} { Init(); }\n"
          "};\n");
  const FunctionDef* ctor = FindFn(model, "Gauge");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->owner, "Gauge");
  ASSERT_EQ(ctor->calls.size(), 1u);
  EXPECT_EQ(ctor->calls[0].name, "Init");
}

TEST(ProjectModelTest, PreprocessorDirectivesDoNotSkewScopes) {
  ProjectModel model;
  AddFile(&model, "src/core/f.h",
          "#ifndef GUARD_H_\n"
          "#define GUARD_H_\n"
          "#define OPEN_BRACE {\n"
          "\n"
          "inline int After() { return 1; }\n"
          "\n"
          "#endif  // GUARD_H_\n");
  // The unbalanced brace inside the macro must not swallow After().
  const FunctionDef* after = FindFn(model, "After");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->body_begin, 5u);
}

TEST(ProjectModelTest, FileIndexAcrossMultipleFiles) {
  ProjectModel model;
  AddFile(&model, "src/core/g.h", "inline int G() { return 1; }\n");
  AddFile(&model, "src/core/h.cc", "int H() { return 2; }\n");
  EXPECT_EQ(model.FileIndex("src/core/g.h"), 0);
  EXPECT_EQ(model.FileIndex("src/core/h.cc"), 1);
  EXPECT_EQ(model.FileIndex("src/core/missing.cc"), -1);
  const FunctionDef* h = FindFn(model, "H");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->file, 1);
}

}  // namespace
