#include "compress/lossless.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sparse.h"
#include "compress/raw_codec.h"

namespace sketchml::compress {
namespace {

std::vector<uint8_t> ToBytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(HuffmanByteCoderTest, RoundTripsText) {
  std::string text;
  for (int i = 0; i < 30; ++i) {
    text +=
        "sketchml compresses the communicated key-value gradients with "
        "data sketches; entropy coding likes low-entropy text like this. ";
  }
  const auto input = ToBytes(text);  // Long enough to amortize the
                                     // 257-byte code-length header.
  std::vector<uint8_t> encoded, decoded;
  HuffmanByteCoder::Encode(input, &encoded);
  ASSERT_TRUE(HuffmanByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_EQ(decoded, input);
  EXPECT_LT(encoded.size(), input.size());  // Text compresses.
}

TEST(HuffmanByteCoderTest, EmptyInput) {
  std::vector<uint8_t> encoded, decoded = {1, 2, 3};
  HuffmanByteCoder::Encode({}, &encoded);
  ASSERT_TRUE(HuffmanByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(HuffmanByteCoderTest, SingleDistinctByte) {
  std::vector<uint8_t> input(1000, 0x42);
  std::vector<uint8_t> encoded, decoded;
  HuffmanByteCoder::Encode(input, &encoded);
  ASSERT_TRUE(HuffmanByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_EQ(decoded, input);
  // 1 bit per byte + 257-byte header.
  EXPECT_LT(encoded.size(), 400u);
}

TEST(HuffmanByteCoderTest, AllByteValues) {
  std::vector<uint8_t> input;
  for (int rep = 0; rep < 5; ++rep) {
    for (int b = 0; b < 256; ++b) input.push_back(static_cast<uint8_t>(b));
  }
  std::vector<uint8_t> encoded, decoded;
  HuffmanByteCoder::Encode(input, &encoded);
  ASSERT_TRUE(HuffmanByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_EQ(decoded, input);
}

TEST(HuffmanByteCoderTest, RandomBytesBarelyCompress) {
  // The §5 point: uniformly distributed bytes (like float gradients)
  // have ~8 bits of entropy per byte — Huffman gains nothing.
  common::Rng rng(307);
  std::vector<uint8_t> input(20000);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextBounded(256));
  std::vector<uint8_t> encoded, decoded;
  HuffmanByteCoder::Encode(input, &encoded);
  ASSERT_TRUE(HuffmanByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_EQ(decoded, input);
  EXPECT_GT(encoded.size(), input.size() * 95 / 100);
}

TEST(HuffmanByteCoderTest, DecodeRejectsTruncation) {
  const auto input = ToBytes("some sample payload for truncation testing");
  std::vector<uint8_t> encoded, decoded;
  HuffmanByteCoder::Encode(input, &encoded);
  encoded.resize(encoded.size() - 3);
  EXPECT_FALSE(HuffmanByteCoder::Decode(encoded, &decoded).ok());
}

TEST(RunLengthByteCoderTest, RoundTripsRuns) {
  std::vector<uint8_t> input;
  input.insert(input.end(), 300, 7);   // Long run (split at 255).
  input.insert(input.end(), 1, 9);
  input.insert(input.end(), 50, 0);
  std::vector<uint8_t> encoded, decoded;
  RunLengthByteCoder::Encode(input, &encoded);
  ASSERT_TRUE(RunLengthByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_EQ(decoded, input);
  EXPECT_LT(encoded.size(), 20u);  // 4 pairs + header.
}

TEST(RunLengthByteCoderTest, NonRepetitiveInputExpands) {
  // The §5 point for RLE: without consecutive repeats it doubles size.
  std::vector<uint8_t> input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<uint8_t>(i * 37));
  std::vector<uint8_t> encoded, decoded;
  RunLengthByteCoder::Encode(input, &encoded);
  ASSERT_TRUE(RunLengthByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_EQ(decoded, input);
  EXPECT_GT(encoded.size(), input.size() * 3 / 2);
}

TEST(RunLengthByteCoderTest, EmptyAndGarbage) {
  std::vector<uint8_t> encoded, decoded = {1};
  RunLengthByteCoder::Encode({}, &encoded);
  ASSERT_TRUE(RunLengthByteCoder::Decode(encoded, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
  std::vector<uint8_t> bad = {0x08, 0x00, 0x05};  // Declares 8, zero run.
  EXPECT_FALSE(RunLengthByteCoder::Decode(bad, &decoded).ok());
}

common::SparseGradient MakeGradient(size_t count, uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(1 << 20));
  common::SparseGradient grad;
  for (uint64_t k : keys) grad.push_back({k, rng.NextGaussian() * 0.05});
  return grad;
}

TEST(LosslessGradientCodecTest, HuffmanRoundTripsGradientsExactly) {
  HuffmanGradientCodec codec("huffman");
  const auto grad = MakeGradient(2000, 311);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_EQ(decoded, grad);
  EXPECT_TRUE(codec.IsLossless());
}

TEST(LosslessGradientCodecTest, RleRoundTripsGradientsExactly) {
  RleGradientCodec codec("rle");
  const auto grad = MakeGradient(2000, 313);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_EQ(decoded, grad);
}

TEST(LosslessGradientCodecTest, BothLoseToSketchKeyEncodingOnGradients) {
  // §5's verdict measured: generic lossless coding of the raw 12d bytes
  // cannot get close to delta-binary + sketch compression; RLE even
  // expands the message.
  const auto grad = MakeGradient(5000, 317);
  RawCodec raw;
  HuffmanGradientCodec huffman("huffman");
  RleGradientCodec rle("rle");
  EncodedGradient m_raw, m_huffman, m_rle;
  ASSERT_TRUE(raw.Encode(grad, &m_raw).ok());
  ASSERT_TRUE(huffman.Encode(grad, &m_huffman).ok());
  ASSERT_TRUE(rle.Encode(grad, &m_rle).ok());
  EXPECT_GT(m_huffman.size(), m_raw.size() / 2);  // < 2x gain.
  EXPECT_GT(m_rle.size(), m_raw.size());          // Expansion.
}

}  // namespace
}  // namespace sketchml::compress
