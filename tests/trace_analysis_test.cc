// Critical-path trace analysis: Chrome-trace parsing, causal tree
// reconstruction (orphans, multi-root detection), the backward-walk
// phase attribution (must partition each epoch span exactly), straggler
// attribution, retry amplification, structural golden diffing, and an
// end-to-end pass over a real DistributedTrainer trace.

#include "dist/trace_analysis.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/obs.h"
#include "common/trace.h"
#include "core/codec_factory.h"
#include "dist/fault.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

TraceSpanRecord MakeSpan(const char* category, const char* name,
                         double ts_us, double dur_us, uint64_t trace_id,
                         uint64_t span_id, uint64_t parent_span_id) {
  TraceSpanRecord span;
  span.category = category;
  span.name = name;
  span.ts_us = ts_us;
  span.dur_us = dur_us;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span_id = parent_span_id;
  return span;
}

/// One epoch [0, 100] with one batch [0, 90]: two pushes, the later one
/// (worker 7, ending at 80) bounds the batch. Compute fills most of each
/// push; modeled transfers hang off the pushes.
ParsedTrace TwoWorkerTrace() {
  ParsedTrace trace;
  trace.spans.push_back(MakeSpan("trainer", "epoch", 0, 100, 1, 1, 0));
  trace.spans.push_back(MakeSpan("trainer", "batch", 0, 90, 1, 2, 1));
  trace.spans.push_back(MakeSpan("trainer", "push", 0, 50, 1, 3, 2));
  trace.spans.back().args = {{"worker", 0.0}};
  trace.spans.push_back(MakeSpan("trainer", "compute", 0, 40, 1, 4, 3));
  trace.spans.push_back(MakeSpan("trainer", "push", 10, 70, 1, 5, 2));
  trace.spans.back().args = {{"worker", 7.0}};
  trace.spans.push_back(MakeSpan("trainer", "compute", 10, 60, 1, 6, 5));
  trace.spans.push_back(
      MakeSpan("network", "transfer", 70, 500, 1, 7, 5));
  trace.spans.back().args = {{"attempt", 0.0}, {"bytes", 1000.0}};
  trace.spans.push_back(
      MakeSpan("network", "transfer", 70, 800, 1, 8, 5));
  trace.spans.back().args = {{"attempt", 1.0}, {"bytes", 250.0}};
  trace.spans.push_back(MakeSpan("trainer", "aggregate", 82, 4, 1, 9, 2));
  trace.spans.push_back(MakeSpan("trainer", "update", 87, 2, 1, 10, 2));
  trace.spans.push_back(MakeSpan("network", "gather", 81, 300, 1, 11, 2));
  trace.spans.back().args = {{"bytes", 1250.0}};
  return trace;
}

TEST(TraceAnalysisTest, ParsesChromeTraceEventsArgsAndFooter) {
  const std::string json = R"({"traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"x"}},
{"ph":"X","pid":1,"tid":3,"ts":1.5,"dur":2.5,"cat":"trainer","name":"push",
 "args":{"worker":4,"trace_id":9,"span_id":10,"parent_span_id":8}},
{"ph":"s","pid":1,"tid":1,"ts":1.5,"id":10,"cat":"trainer","name":"push"},
{"ph":"f","bp":"e","pid":1,"tid":3,"ts":1.5,"id":10,"cat":"trainer",
 "name":"push"}
],"displayTimeUnit":"ms","droppedEvents":6})";
  auto trace = ParseChromeTrace(json);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->dropped_events, 6u);
  ASSERT_EQ(trace->spans.size(), 1u);  // Only the "X" event.
  const TraceSpanRecord& span = trace->spans[0];
  EXPECT_EQ(span.category, "trainer");
  EXPECT_EQ(span.name, "push");
  EXPECT_EQ(span.tid, 3u);
  EXPECT_DOUBLE_EQ(span.ts_us, 1.5);
  EXPECT_DOUBLE_EQ(span.dur_us, 2.5);
  EXPECT_EQ(span.trace_id, 9u);
  EXPECT_EQ(span.span_id, 10u);
  EXPECT_EQ(span.parent_span_id, 8u);
  EXPECT_DOUBLE_EQ(span.ArgOr("worker", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(span.ArgOr("missing", -1.0), -1.0);
}

TEST(TraceAnalysisTest, RejectsTracesWithoutAnEpochSpan) {
  ParsedTrace trace;
  trace.spans.push_back(MakeSpan("trainer", "batch", 0, 10, 1, 1, 0));
  const auto report = AnalyzeTrace(trace);
  ASSERT_FALSE(report.ok());
}

TEST(TraceAnalysisTest, AttributionPartitionsTheEpochExactly) {
  const auto report = AnalyzeTrace(TwoWorkerTrace());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->epoch_total_us, 100.0);
  // The walk partitions [0, 100] exactly.
  EXPECT_DOUBLE_EQ(report->attribution.TotalUs(), 100.0);
  // Critical path: epoch→batch→push(w7)→compute [10,70] = 60, and
  // before push(w7) began the frontier was push(w0)'s compute, clipped
  // to [0,10] = 10 more. aggregate [82,86] = 4; update [87,89] = 2; the
  // rest is structural self-time (push tails, batch gaps, epoch tail).
  EXPECT_DOUBLE_EQ(report->attribution.compute_us, 70.0);
  EXPECT_DOUBLE_EQ(report->attribution.aggregate_us, 4.0);
  EXPECT_DOUBLE_EQ(report->attribution.update_us, 2.0);
  EXPECT_DOUBLE_EQ(report->attribution.other_us, 24.0);
  // Modeled spans stay out of the wall walk but are summed separately.
  EXPECT_DOUBLE_EQ(report->modeled.gather_us, 300.0);
}

TEST(TraceAnalysisTest, CountsStructureStragglersAndRetries) {
  const auto report = AnalyzeTrace(TwoWorkerTrace());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->epochs, 1u);
  EXPECT_EQ(report->batches, 1u);
  EXPECT_EQ(report->pushes, 2u);
  EXPECT_EQ(report->transfers, 2u);
  EXPECT_EQ(report->retry_attempts, 1u);
  EXPECT_EQ(report->orphan_spans, 0u);
  EXPECT_EQ(report->multi_root_traces, 0u);
  EXPECT_EQ(report->bytes_up, 1250u);
  EXPECT_EQ(report->first_attempt_bytes, 1000u);
  EXPECT_EQ(report->retransmit_bytes, 250u);
  EXPECT_DOUBLE_EQ(report->RetryAmplification(), 0.25);
  // Worker 7's push ends last: it bounded the only batch.
  ASSERT_EQ(report->stragglers.size(), 1u);
  EXPECT_EQ(report->stragglers[0].worker, 7);
  EXPECT_EQ(report->stragglers[0].batches_bounded, 1u);
}

TEST(TraceAnalysisTest, DetectsOrphansAndMultiRootTraces) {
  ParsedTrace trace = TwoWorkerTrace();
  // Parent 99 exists nowhere: orphan.
  trace.spans.push_back(MakeSpan("trainer", "compute", 5, 1, 1, 20, 99));
  // A second root inside trace 1.
  trace.spans.push_back(MakeSpan("trainer", "stray", 6, 1, 1, 21, 0));
  const auto report = AnalyzeTrace(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->orphan_spans, 1u);
  EXPECT_EQ(report->multi_root_traces, 1u);
}

TEST(TraceAnalysisTest, JsonRoundTripsAndStructuralDiffCatchesDrift) {
  const auto report = AnalyzeTrace(TwoWorkerTrace());
  ASSERT_TRUE(report.ok());
  const std::string golden = CriticalPathReportToJson(*report);

  // Identical reports diff clean.
  auto clean = DiffStructuralJson(golden, golden);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->empty());

  // A structural change (one more push) is flagged...
  ParsedTrace changed = TwoWorkerTrace();
  changed.spans.push_back(MakeSpan("trainer", "push", 20, 30, 1, 30, 2));
  const auto changed_report = AnalyzeTrace(changed);
  ASSERT_TRUE(changed_report.ok());
  auto flagged =
      DiffStructuralJson(golden, CriticalPathReportToJson(*changed_report));
  ASSERT_TRUE(flagged.ok());
  ASSERT_FALSE(flagged->empty());
  bool saw_pushes = false;
  for (const std::string& mismatch : *flagged) {
    if (mismatch.find("structural.pushes") != std::string::npos) {
      saw_pushes = true;
    }
  }
  EXPECT_TRUE(saw_pushes);

  // ...while a timing-only change is not: same structure, shifted walls.
  ParsedTrace slower = TwoWorkerTrace();
  for (TraceSpanRecord& span : slower.spans) span.dur_us *= 3.0;
  const auto slower_report = AnalyzeTrace(slower);
  ASSERT_TRUE(slower_report.ok());
  auto timing_only =
      DiffStructuralJson(golden, CriticalPathReportToJson(*slower_report));
  ASSERT_TRUE(timing_only.ok());
  EXPECT_TRUE(timing_only->empty());
}

// -- End to end over a real trainer trace ------------------------------

class ScopedTracing {
 public:
  ScopedTracing() : was_enabled_(obs::TracingEnabled()) {
    obs::SetTracingEnabled(true);
    obs::TraceLog::Global().Reset();
  }
  ~ScopedTracing() {
    obs::TraceLog::Global().Reset();
    obs::SetTracingEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

struct Fixture {
  Fixture() {
    ml::SyntheticConfig config;
    config.num_instances = 2000;
    config.dim = 1 << 14;
    config.avg_nnz = 30;
    config.seed = 17;
    ml::Dataset all = ml::GenerateSynthetic(config);
    auto [tr, te] = all.Split(0.25);
    train = std::make_unique<ml::Dataset>(std::move(tr));
    test = std::make_unique<ml::Dataset>(std::move(te));
    loss = ml::MakeLoss("lr");
  }

  std::unique_ptr<ml::Dataset> train, test;
  std::unique_ptr<ml::Loss> loss;
};

common::Result<CriticalPathReport> RunTrainerAndAnalyze(
    const Fixture& fixture, int trace_sample_every, int num_threads) {
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.seed = 11;
  cluster.faults.drop_prob = 0.05;  // Exercises retries.
  cluster.faults.max_retries = 3;
  TrainerConfig config;
  config.num_threads = num_threads;
  config.trace_sample_every = trace_sample_every;
  DistributedTrainer trainer(
      fixture.train.get(), fixture.test.get(), fixture.loss.get(),
      std::move(core::MakeCodec("sketchml")).value(), cluster, config);
  auto result = trainer.RunEpoch();
  if (!result.ok()) return result.status();

  std::ostringstream out;
  obs::TraceLog::Global().WriteChromeTrace(out);
  SKETCHML_ASSIGN_OR_RETURN(const ParsedTrace trace,
                            ParseChromeTrace(out.str()));
  return AnalyzeTrace(trace);
}

TEST(TraceAnalysisTest, TrainerTraceReconstructsEveryBatchRooted) {
  Fixture fixture;
  ScopedTracing scoped;
  auto report = RunTrainerAndAnalyze(fixture, /*trace_sample_every=*/1,
                                     /*num_threads=*/3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epochs, 1u);
  EXPECT_EQ(report->batches, 10u);  // batch_ratio 0.1.
  EXPECT_EQ(report->pushes, 40u);   // 4 workers x 10 batches.
  EXPECT_GE(report->transfers, report->pushes);
  EXPECT_GT(report->retry_attempts, 0u);  // 5% drop, 40+ messages.
  EXPECT_EQ(report->orphan_spans, 0u);
  EXPECT_EQ(report->multi_root_traces, 0u);
  EXPECT_GT(report->bytes_up, 0u);
  EXPECT_GT(report->bytes_down, 0u);
  // The acceptance bound: attribution sums to the epoch span's duration
  // within 1% (the walk is exact, so this holds with margin to spare).
  EXPECT_NEAR(report->attribution.TotalUs(), report->epoch_total_us,
              report->epoch_total_us * 0.01);
  EXPECT_GT(report->attribution.compute_us, 0.0);
  EXPECT_GT(report->attribution.encode_us, 0.0);
  EXPECT_GT(report->attribution.decode_us, 0.0);
  // Every batch got a bounding worker.
  uint64_t bounded = 0;
  for (const StragglerRow& row : report->stragglers) {
    bounded += row.batches_bounded;
  }
  EXPECT_EQ(bounded, report->batches);
}

TEST(TraceAnalysisTest, SamplingRecordsEveryNthBatchTree) {
  Fixture fixture;
  ScopedTracing scoped;
  auto report = RunTrainerAndAnalyze(fixture, /*trace_sample_every=*/3,
                                     /*num_threads=*/1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Global batches 0..9, sampled at 0, 3, 6, 9.
  EXPECT_EQ(report->batches, 4u);
  EXPECT_EQ(report->pushes, 16u);
  EXPECT_EQ(report->orphan_spans, 0u);
  // Epoch and driver phase spans are always recorded.
  EXPECT_EQ(report->epochs, 1u);
}

}  // namespace
}  // namespace sketchml::dist
