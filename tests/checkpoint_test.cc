#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/codec_factory.h"
#include "dist/checkpoint.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

struct Fixture {
  Fixture() {
    ml::SyntheticConfig config;
    config.num_instances = 2000;
    config.dim = 1 << 14;
    config.avg_nnz = 30;
    config.seed = 17;
    ml::Dataset all = ml::GenerateSynthetic(config);
    auto [tr, te] = all.Split(0.25);
    train = std::make_unique<ml::Dataset>(std::move(tr));
    test = std::make_unique<ml::Dataset>(std::move(te));
    loss = ml::MakeLoss("lr");
  }

  std::unique_ptr<compress::GradientCodec> Codec(const std::string& name) {
    return std::move(core::MakeCodec(name)).value();
  }

  TrainerConfig Config() {
    TrainerConfig config;
    config.learning_rate = 0.05;
    config.adam_epsilon = 0.01;
    return config;
  }

  std::unique_ptr<ml::Dataset> train, test;
  std::unique_ptr<ml::Loss> loss;
};

/// The deterministic subset of EpochStats (measured seconds excluded).
void ExpectDeterministicFieldsEqual(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.avg_gradient_nnz, b.avg_gradient_nnz);  // Bit-exact.
  EXPECT_EQ(a.train_loss, b.train_loss);
  EXPECT_EQ(a.test_loss, b.test_loss);
}

// ---------------------------------------------------------------------------
// Envelope units: SealCheckpoint / OpenCheckpoint.

TEST(CheckpointEnvelopeTest, RoundTripsPayloadExactly) {
  std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 42};
  std::vector<uint8_t> sealed;
  SealCheckpoint(payload, &sealed);
  EXPECT_GT(sealed.size(), payload.size());  // Magic + version + frame.
  std::vector<uint8_t> opened;
  ASSERT_TRUE(OpenCheckpoint(sealed, &opened).ok());
  EXPECT_EQ(opened, payload);
}

TEST(CheckpointEnvelopeTest, RoundTripsEmptyPayload) {
  std::vector<uint8_t> sealed, opened = {9, 9};
  SealCheckpoint({}, &sealed);
  ASSERT_TRUE(OpenCheckpoint(sealed, &opened).ok());
  EXPECT_TRUE(opened.empty());
}

TEST(CheckpointEnvelopeTest, EveryTruncationIsCorruptedDataNotACrash) {
  // Satellite: a checkpoint cut off at *any* byte must surface
  // kCorruptedData from the envelope — no crash, no partial payload.
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> sealed;
  SealCheckpoint(payload, &sealed);
  for (size_t len = 0; len < sealed.size(); ++len) {
    std::vector<uint8_t> truncated(sealed.begin(), sealed.begin() + len);
    std::vector<uint8_t> opened;
    const common::Status status = OpenCheckpoint(truncated, &opened);
    EXPECT_EQ(status.code(), common::StatusCode::kCorruptedData)
        << "truncated to " << len << " of " << sealed.size() << " bytes: "
        << status.ToString();
  }
}

TEST(CheckpointEnvelopeTest, EveryBitFlipIsDetected) {
  // Flip every bit of every byte — header and payload alike. The
  // magic/version checks catch header damage, the CRC frame the rest.
  std::vector<uint8_t> payload = {10, 20, 30, 40, 50, 60, 70, 80};
  std::vector<uint8_t> sealed;
  SealCheckpoint(payload, &sealed);
  for (size_t i = 0; i < sealed.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> damaged = sealed;
      damaged[i] ^= static_cast<uint8_t>(1u << bit);
      std::vector<uint8_t> opened;
      EXPECT_FALSE(OpenCheckpoint(damaged, &opened).ok())
          << "flip of bit " << bit << " in byte " << i << " went undetected";
    }
  }
}

TEST(CheckpointEnvelopeTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> sealed;
  SealCheckpoint({1, 2, 3}, &sealed);
  sealed.push_back(0xFF);
  std::vector<uint8_t> opened;
  EXPECT_FALSE(OpenCheckpoint(sealed, &opened).ok());
}

TEST(CheckpointEnvelopeTest, RejectsForeignBytes) {
  const std::string text = "this is not a checkpoint at all, sorry";
  std::vector<uint8_t> bytes(text.begin(), text.end());
  std::vector<uint8_t> opened;
  EXPECT_EQ(OpenCheckpoint(bytes, &opened).code(),
            common::StatusCode::kCorruptedData);
}

// ---------------------------------------------------------------------------
// Trainer save/restore.

TEST(TrainerCheckpointTest, RestoreReplaysTheExactContinuation) {
  // Save after epoch 2, keep training to epoch 4, then restore and train
  // again: the replayed epochs 3-4 must be bit-identical to the first
  // continuation (counters, codec stream state, and optimizer moments
  // all round-trip).
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             f.Codec("sketchml"), cluster, f.Config());
  ASSERT_TRUE(trainer.Run(2).ok());
  std::vector<uint8_t> checkpoint;
  ASSERT_TRUE(trainer.SaveCheckpoint(&checkpoint).ok());
  EXPECT_GT(checkpoint.size(), 0u);
  auto first = trainer.Run(2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(trainer.epochs_run(), 4);
  ASSERT_TRUE(trainer.RestoreCheckpoint(checkpoint).ok());
  EXPECT_EQ(trainer.epochs_run(), 2);  // Counters restored exactly.
  auto replay = trainer.Run(2);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(first->size(), replay->size());
  for (size_t e = 0; e < first->size(); ++e) {
    ExpectDeterministicFieldsEqual((*first)[e], (*replay)[e]);
  }
}

TEST(TrainerCheckpointTest, RestoreAcrossTrainerInstances) {
  // A checkpoint is self-contained: a fresh trainer with the same shape
  // resumes exactly where the saved one stopped.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  DistributedTrainer a(f.train.get(), f.test.get(), f.loss.get(),
                       f.Codec("sketchml"), cluster, f.Config());
  ASSERT_TRUE(a.Run(2).ok());
  std::vector<uint8_t> checkpoint;
  ASSERT_TRUE(a.SaveCheckpoint(&checkpoint).ok());
  auto continued = a.Run(1);
  ASSERT_TRUE(continued.ok());

  DistributedTrainer b(f.train.get(), f.test.get(), f.loss.get(),
                       f.Codec("sketchml"), cluster, f.Config());
  ASSERT_TRUE(b.RestoreCheckpoint(checkpoint).ok());
  EXPECT_EQ(b.epochs_run(), 2);
  auto resumed = b.Run(1);
  ASSERT_TRUE(resumed.ok());
  ExpectDeterministicFieldsEqual(continued->back(), resumed->back());
}

TEST(TrainerCheckpointTest, CorruptedCheckpointNeverSilentlyLoads) {
  // Satellite: truncation and bit flips at the trainer level must return
  // a Status and leave the trainer untouched — never crash, never load a
  // half-valid state.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 2;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             f.Codec("sketchml"), cluster, f.Config());
  ASSERT_TRUE(trainer.Run(1).ok());
  std::vector<uint8_t> checkpoint;
  ASSERT_TRUE(trainer.SaveCheckpoint(&checkpoint).ok());
  // A sample of truncation points (the exhaustive envelope sweep lives in
  // CheckpointEnvelopeTest; here we prove the trainer surface).
  for (size_t len : {size_t{0}, size_t{3}, size_t{8}, checkpoint.size() / 2,
                     checkpoint.size() - 1}) {
    std::vector<uint8_t> truncated(checkpoint.begin(),
                                   checkpoint.begin() + len);
    EXPECT_EQ(trainer.RestoreCheckpoint(truncated).code(),
              common::StatusCode::kCorruptedData)
        << "truncated to " << len;
    EXPECT_EQ(trainer.epochs_run(), 1);  // State untouched.
  }
  // Bit flips: every envelope-header byte plus ~200 evenly spaced
  // payload bytes. The exhaustive per-bit sweep lives in
  // CheckpointEnvelopeTest on a small payload; a trainer checkpoint is
  // hundreds of kilobytes, and the CRC check that rejects it is the same.
  const size_t stride = std::max<size_t>(1, checkpoint.size() / 200);
  for (size_t i = 0; i < checkpoint.size(); i += (i < 16 ? 1 : stride)) {
    std::vector<uint8_t> damaged = checkpoint;
    damaged[i] ^= 0x40;
    EXPECT_FALSE(trainer.RestoreCheckpoint(damaged).ok())
        << "bit flip in byte " << i << " silently loaded";
    EXPECT_EQ(trainer.epochs_run(), 1);
  }
}

TEST(TrainerCheckpointTest, TrainerStaysUsableAfterFailedRestore) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 2;
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             f.Codec("sketchml"), cluster, f.Config());
  ASSERT_TRUE(trainer.Run(1).ok());
  EXPECT_FALSE(trainer.RestoreCheckpoint({0xDE, 0xAD, 0xBE, 0xEF}).ok());
  auto after = trainer.RunEpoch();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(trainer.epochs_run(), 2);
}

TEST(TrainerCheckpointTest, RejectsCheckpointFromMismatchedOptimizer) {
  // A valid envelope whose payload describes a different trainer shape
  // (here: Adam moments vs. plain SGD) must be refused, not coerced.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 2;
  DistributedTrainer adam(f.train.get(), nullptr, f.loss.get(),
                          f.Codec("sketchml"), cluster, f.Config());
  ASSERT_TRUE(adam.Run(1).ok());
  std::vector<uint8_t> checkpoint;
  ASSERT_TRUE(adam.SaveCheckpoint(&checkpoint).ok());
  TrainerConfig sgd_config = f.Config();
  sgd_config.use_adam = false;
  DistributedTrainer sgd(f.train.get(), nullptr, f.loss.get(),
                         f.Codec("sketchml"), cluster, sgd_config);
  const common::Status status = sgd.RestoreCheckpoint(checkpoint);
  ASSERT_EQ(status.code(), common::StatusCode::kCorruptedData);
  EXPECT_NE(status.message().find("optimizer kind"), std::string::npos)
      << status.ToString();
}

TEST(TrainerCheckpointTest, RejectsCheckpointFromDifferentFleetShape) {
  // Codec lane count is part of the trainer shape: a 4-worker checkpoint
  // cannot restore into a 2-worker trainer.
  Fixture f;
  ClusterConfig four;
  four.num_workers = 4;
  DistributedTrainer a(f.train.get(), nullptr, f.loss.get(),
                       f.Codec("sketchml"), four, f.Config());
  ASSERT_TRUE(a.Run(1).ok());
  std::vector<uint8_t> checkpoint;
  ASSERT_TRUE(a.SaveCheckpoint(&checkpoint).ok());
  ClusterConfig two;
  two.num_workers = 2;
  DistributedTrainer b(f.train.get(), nullptr, f.loss.get(),
                       f.Codec("sketchml"), two, f.Config());
  const common::Status status = b.RestoreCheckpoint(checkpoint);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("lane count"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// Rollback-and-retry (the acceptance scenario: a below-quorum epoch with
// checkpoints enabled rolls back and the run completes).

TEST(CheckpointRollbackTest, BelowQuorumEpochRollsBackAndCompletes) {
  // Crash faults against a tight quorum: for some seeds two overlapping
  // crash windows sink a batch below quorum and the epoch aborts
  // kUnavailable. With epoch checkpoints the same plan rolls back and
  // retries with fresh fault draws (the global batch counter is not
  // rewound), and the run completes. Scan seeds for a demonstrating
  // case rather than hard-coding one: the schedule depends on the batch
  // count, which this fixture is free to change.
  Fixture f;
  bool demonstrated = false;
  for (uint64_t seed = 1; seed <= 30 && !demonstrated; ++seed) {
    ClusterConfig fragile;
    fragile.num_workers = 4;
    fragile.faults.seed = seed;
    fragile.faults.crash_prob = 0.06;
    fragile.faults.min_quorum = 3;
    TrainerConfig config = f.Config();
    DistributedTrainer bare(f.train.get(), nullptr, f.loss.get(),
                            f.Codec("sketchml"), fragile, config);
    auto failed = bare.Run(5);
    if (failed.ok()) continue;  // This seed never sank below quorum.
    ASSERT_EQ(failed.status().code(), common::StatusCode::kUnavailable)
        << failed.status().ToString();

    ClusterConfig recovering = fragile;
    recovering.membership.checkpoint_every = 1;
    recovering.membership.max_rollbacks = 5;
    DistributedTrainer durable(f.train.get(), nullptr, f.loss.get(),
                               f.Codec("sketchml"), recovering, config);
    auto recovered = durable.Run(5);
    if (!recovered.ok()) continue;  // Rollback budget exhausted; next seed.
    EXPECT_GT(durable.rollbacks_used(), 0);
    EXPECT_EQ(durable.epochs_run(), 5);
    uint64_t reported = 0;
    for (const EpochStats& s : *recovered) reported += s.rollbacks;
    EXPECT_EQ(reported, static_cast<uint64_t>(durable.rollbacks_used()));
    demonstrated = true;
  }
  EXPECT_TRUE(demonstrated)
      << "no seed in [1, 30] demonstrated rollback recovery";
}

TEST(CheckpointRollbackTest, WithoutCheckpointsTheFailureIsTerminal) {
  // max_rollbacks > 0 but checkpoint_every = 0: there is nothing to roll
  // back to, so a quorum failure still surfaces kUnavailable.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.drop_prob = 1.0;
  cluster.faults.max_retries = 1;
  cluster.faults.min_quorum = 2;
  cluster.membership.max_rollbacks = 5;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             f.Codec("adam-double"), cluster, f.Config());
  auto result = trainer.RunEpoch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(trainer.rollbacks_used(), 0);
}

TEST(CheckpointRollbackTest, RollbackBudgetIsEnforced) {
  // A permanently unavailable cluster (every message dropped) exhausts
  // the rollback budget and still fails — rollbacks bound the retry
  // loop, they never spin forever.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.drop_prob = 1.0;
  cluster.faults.max_retries = 1;
  cluster.faults.min_quorum = 2;
  cluster.membership.checkpoint_every = 1;
  cluster.membership.max_rollbacks = 2;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             f.Codec("adam-double"), cluster, f.Config());
  // First epoch fails before any checkpoint exists; nothing to retry.
  auto result = trainer.Run(2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kUnavailable);
  EXPECT_LE(trainer.rollbacks_used(), 2);
}

}  // namespace
}  // namespace sketchml::dist
