// Micro-benchmarks (google-benchmark) for the gradient codecs: encode /
// decode throughput and byte output per codec, plus the delta-binary vs
// bitmap key-encoding ablation (Appendix A.3).

#include <benchmark/benchmark.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "common/sparse.h"
#include "compress/delta_binary_key_codec.h"
#include "core/codec_factory.h"

namespace {

using namespace sketchml;

common::SparseGradient MakeGradient(size_t d, uint64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < d) keys.insert(rng.NextBounded(dim));
  common::SparseGradient grad;
  for (uint64_t k : keys) {
    const double v = rng.NextBernoulli(0.9) ? rng.NextGaussian() * 0.01
                                            : rng.NextGaussian() * 0.3;
    grad.push_back({k, v});
  }
  return grad;
}

void BM_Encode(benchmark::State& state, const char* name) {
  auto codec = std::move(core::MakeCodec(name)).value();
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  compress::EncodedGradient msg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Encode(grad, &msg));
  }
  state.SetItemsProcessed(state.iterations() * grad.size());
  state.counters["bytes/pair"] =
      static_cast<double>(msg.size()) / static_cast<double>(grad.size());
}

void BM_Decode(benchmark::State& state, const char* name) {
  auto codec = std::move(core::MakeCodec(name)).value();
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  compress::EncodedGradient msg;
  if (!codec->Encode(grad, &msg).ok()) state.SkipWithError("encode failed");
  common::SparseGradient decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(msg, &decoded));
  }
  state.SetItemsProcessed(state.iterations() * grad.size());
}

BENCHMARK_CAPTURE(BM_Encode, adam_double, "adam-double");
BENCHMARK_CAPTURE(BM_Encode, adam_key, "adam+key");
BENCHMARK_CAPTURE(BM_Encode, adam_key_quan, "adam+key+quan");
BENCHMARK_CAPTURE(BM_Encode, sketchml, "sketchml");
BENCHMARK_CAPTURE(BM_Encode, zipml16, "zipml-16bit");
BENCHMARK_CAPTURE(BM_Encode, onebit, "onebit");
BENCHMARK_CAPTURE(BM_Encode, qsgd, "qsgd");
BENCHMARK_CAPTURE(BM_Encode, huffman, "huffman");
BENCHMARK_CAPTURE(BM_Encode, rle, "rle");
BENCHMARK_CAPTURE(BM_Decode, adam_double, "adam-double");
BENCHMARK_CAPTURE(BM_Decode, sketchml, "sketchml");
BENCHMARK_CAPTURE(BM_Decode, zipml16, "zipml-16bit");

void BM_DeltaBinaryKeys(benchmark::State& state) {
  const auto grad =
      MakeGradient(static_cast<size_t>(state.range(0)), 1 << 22, 5);
  const auto keys = common::Keys(grad);
  for (auto _ : state) {
    common::ByteWriter writer;
    benchmark::DoNotOptimize(
        compress::DeltaBinaryKeyCodec::Encode(keys, &writer));
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.counters["bytes/key"] =
      static_cast<double>(compress::DeltaBinaryKeyCodec::EncodedSize(keys)) /
      static_cast<double>(keys.size());
}
BENCHMARK(BM_DeltaBinaryKeys)->Arg(1 << 12)->Arg(1 << 16);

void BM_BitmapKeys(benchmark::State& state) {
  const auto grad =
      MakeGradient(static_cast<size_t>(state.range(0)), 1 << 22, 5);
  const auto keys = common::Keys(grad);
  for (auto _ : state) {
    common::ByteWriter writer;
    benchmark::DoNotOptimize(
        compress::BitmapKeyCodec::Encode(keys, 1 << 22, &writer));
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.counters["bytes/key"] =
      static_cast<double>(compress::BitmapKeyCodec::EncodedSize(1 << 22)) /
      static_cast<double>(keys.size());
}
BENCHMARK(BM_BitmapKeys)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
