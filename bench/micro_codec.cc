// Micro-benchmarks (google-benchmark) for the gradient codecs: encode /
// decode throughput and byte output per codec, plus the delta-binary vs
// bitmap key-encoding ablation (Appendix A.3).

#include <benchmark/benchmark.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "common/sparse.h"
#include "compress/delta_binary_key_codec.h"
#include "compress/quantile_bucket_quantizer.h"
#include "core/codec_factory.h"

namespace {

using namespace sketchml;

common::SparseGradient MakeGradient(size_t d, uint64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < d) keys.insert(rng.NextBounded(dim));
  common::SparseGradient grad;
  for (uint64_t k : keys) {
    const double v = rng.NextBernoulli(0.9) ? rng.NextGaussian() * 0.01
                                            : rng.NextGaussian() * 0.3;
    grad.push_back({k, v});
  }
  return grad;
}

void BM_Encode(benchmark::State& state, const char* name) {
  auto codec = std::move(core::MakeCodec(name)).value();
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  compress::EncodedGradient msg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Encode(grad, &msg));
  }
  state.SetItemsProcessed(state.iterations() * grad.size());
  state.counters["bytes/pair"] =
      static_cast<double>(msg.size()) / static_cast<double>(grad.size());
}

void BM_Decode(benchmark::State& state, const char* name) {
  auto codec = std::move(core::MakeCodec(name)).value();
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  compress::EncodedGradient msg;
  if (!codec->Encode(grad, &msg).ok()) state.SkipWithError("encode failed");
  common::SparseGradient decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(msg, &decoded));
  }
  state.SetItemsProcessed(state.iterations() * grad.size());
}

BENCHMARK_CAPTURE(BM_Encode, adam_double, "adam-double");
BENCHMARK_CAPTURE(BM_Encode, adam_key, "adam+key");
BENCHMARK_CAPTURE(BM_Encode, adam_key_quan, "adam+key+quan");
BENCHMARK_CAPTURE(BM_Encode, sketchml, "sketchml");
BENCHMARK_CAPTURE(BM_Encode, zipml16, "zipml-16bit");
BENCHMARK_CAPTURE(BM_Encode, onebit, "onebit");
BENCHMARK_CAPTURE(BM_Encode, qsgd, "qsgd");
BENCHMARK_CAPTURE(BM_Encode, huffman, "huffman");
BENCHMARK_CAPTURE(BM_Encode, rle, "rle");
BENCHMARK_CAPTURE(BM_Decode, adam_double, "adam-double");
BENCHMARK_CAPTURE(BM_Decode, sketchml, "sketchml");
BENCHMARK_CAPTURE(BM_Decode, zipml16, "zipml-16bit");

void BM_DeltaBinaryKeys(benchmark::State& state) {
  const auto grad =
      MakeGradient(static_cast<size_t>(state.range(0)), 1 << 22, 5);
  const auto keys = common::Keys(grad);
  for (auto _ : state) {
    common::ByteWriter writer;
    benchmark::DoNotOptimize(
        compress::DeltaBinaryKeyCodec::Encode(keys, &writer));
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.counters["bytes/key"] =
      static_cast<double>(compress::DeltaBinaryKeyCodec::EncodedSize(keys)) /
      static_cast<double>(keys.size());
}
BENCHMARK(BM_DeltaBinaryKeys)->Arg(1 << 12)->Arg(1 << 16);

// --- Level-pinned kernel benches -----------------------------------------
//
// Each bench pins the dispatch to one level with SetActiveLevel (and
// restores it on exit), so a single run reports scalar and AVX2 numbers
// side by side regardless of SKETCHML_SIMD. Unsupported levels are
// skipped, not failed, so the binary stays runnable on any host.

namespace simd = common::simd;

/// Pins the dispatch level for one benchmark's scope.
class LevelPin {
 public:
  LevelPin(benchmark::State& state, simd::Level level)
      : saved_(simd::ActiveLevel()) {
    if (simd::LevelSupported(level)) {
      simd::SetActiveLevel(level);
    } else {
      state.SkipWithError("level not supported on this host");
      ok_ = false;
    }
  }
  ~LevelPin() { simd::SetActiveLevel(saved_); }
  explicit operator bool() const { return ok_; }

 private:
  simd::Level saved_;
  bool ok_ = true;
};

void BM_BucketSearch(benchmark::State& state, simd::Level level) {
  LevelPin pin(state, level);
  if (!pin) return;
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  const auto values = common::Values(grad);
  const auto quantizer = compress::QuantileBucketQuantizer::Build(
      values, static_cast<int>(state.range(0)));
  std::vector<uint16_t> out(values.size());
  for (auto _ : state) {
    quantizer.BucketsOf(values, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK_CAPTURE(BM_BucketSearch, scalar, simd::Level::kScalar)
    ->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_BucketSearch, avx2, simd::Level::kAvx2)
    ->Arg(16)->Arg(256);

void BM_HashBuckets(benchmark::State& state, simd::Level level) {
  LevelPin pin(state, level);
  if (!pin) return;
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  const auto keys = common::Keys(grad);
  std::vector<uint32_t> out(keys.size());
  for (auto _ : state) {
    simd::HashBuckets(keys.data(), keys.size(), /*seed=*/13,
                      /*num_buckets=*/96, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK_CAPTURE(BM_HashBuckets, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_HashBuckets, avx2, simd::Level::kAvx2);

void BM_DeltaScan(benchmark::State& state, simd::Level level) {
  LevelPin pin(state, level);
  if (!pin) return;
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  const auto keys = common::Keys(grad);
  std::vector<uint32_t> deltas(keys.size());
  std::vector<uint8_t> widths(keys.size());
  for (auto _ : state) {
    size_t total = 0;
    benchmark::DoNotOptimize(simd::DeltaScan(
        keys.data(), keys.size(), deltas.data(), widths.data(), &total));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK_CAPTURE(BM_DeltaScan, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_DeltaScan, avx2, simd::Level::kAvx2);

void BM_EncodeSketchMlAt(benchmark::State& state, simd::Level level) {
  LevelPin pin(state, level);
  if (!pin) return;
  auto codec = std::move(core::MakeCodec("sketchml")).value();
  const auto grad = MakeGradient(1 << 15, 1 << 22, 3);
  compress::EncodedGradient msg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Encode(grad, &msg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grad.size()));
}
BENCHMARK_CAPTURE(BM_EncodeSketchMlAt, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_EncodeSketchMlAt, avx2, simd::Level::kAvx2);

void BM_BitmapKeys(benchmark::State& state) {
  const auto grad =
      MakeGradient(static_cast<size_t>(state.range(0)), 1 << 22, 5);
  const auto keys = common::Keys(grad);
  for (auto _ : state) {
    common::ByteWriter writer;
    benchmark::DoNotOptimize(
        compress::BitmapKeyCodec::Encode(keys, 1 << 22, &writer));
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.counters["bytes/key"] =
      static_cast<double>(compress::BitmapKeyCodec::EncodedSize(1 << 22)) /
      static_cast<double>(keys.size());
}
BENCHMARK(BM_BitmapKeys)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
