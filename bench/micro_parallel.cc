// Parallel-execution micro-benchmark: real (harness) wall-clock of the
// distributed-training simulator at 1/2/4/8 threads on the Figure 9(a)
// workload, emitted as BENCH_parallel.json so the perf trajectory of the
// thread-pool execution engine is tracked run over run.
//
// Unlike the fig* benches, which report *simulated* seconds (identical at
// every thread count by design), this harness measures how long the
// simulator itself takes — the quantity the thread pool exists to shrink.
//
//   micro_parallel [--dataset=kdd12] [--model=lr] [--workers=10]
//                  [--epochs=3] [--out=BENCH_parallel.json]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"

namespace {

using namespace sketchml;

struct Sample {
  int threads = 1;
  double wall_seconds = 0.0;
  uint64_t bytes_up = 0;
  double train_loss = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = common::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const common::FlagParser& flags = *parsed;
  const std::string dataset = flags.GetString("dataset", "kdd12");
  const std::string model = flags.GetString("model", "lr");
  const std::string out_path = flags.GetString("out", "BENCH_parallel.json");
  const int workers = static_cast<int>(*flags.GetInt("workers", 10));
  const int epochs = static_cast<int>(*flags.GetInt("epochs", 3));

  bench::Banner("Thread-pool execution engine: simulator wall-clock",
                "perf tracking (not a paper figure); fig09(a) workload");
  // Wall-clock speedup is bounded by the cores the host actually grants
  // (cgroup quotas included), so record it next to the measurements.
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("host hardware_concurrency: %u\n", host_cores);
  auto workload = bench::MakeWorkload(dataset, model);

  std::vector<Sample> samples;
  for (const int threads : {1, 2, 4, 8}) {
    auto config = bench::DefaultTrainerConfig();
    config.evaluate_test_loss = false;
    config.num_threads = threads;
    common::Stopwatch watch;
    const auto stats = bench::Train(workload, "sketchml",
                                    bench::Cluster2For(dataset, workers),
                                    config, epochs);
    Sample sample;
    sample.threads = threads;
    sample.wall_seconds = watch.ElapsedSeconds();
    for (const auto& s : stats) {
      sample.bytes_up += s.bytes_up;
      sample.train_loss = s.train_loss;
    }
    samples.push_back(sample);
    std::printf("threads=%d  wall=%.3fs  (%.3fs/epoch)\n", threads,
                sample.wall_seconds, sample.wall_seconds / epochs);
  }
  bench::Rule();

  // Every thread count must replay the identical simulation.
  bool deterministic = true;
  for (const auto& sample : samples) {
    deterministic = deterministic && sample.bytes_up == samples[0].bytes_up &&
                    sample.train_loss == samples[0].train_loss;
  }
  std::printf("deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  const double serial = samples[0].wall_seconds;
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"micro_parallel\",\n");
  std::fprintf(out, "  \"workload\": \"%s/%s\",\n", dataset.c_str(),
               model.c_str());
  std::fprintf(out, "  \"workers\": %d,\n", workers);
  std::fprintf(out, "  \"epochs\": %d,\n", epochs);
  std::fprintf(out, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(out, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples[i];
    std::fprintf(out,
                 "    {\"threads\": %d, \"wall_seconds\": %.6f, "
                 "\"epoch_wall_seconds\": %.6f, \"speedup_vs_serial\": "
                 "%.3f}%s\n",
                 sample.threads, sample.wall_seconds,
                 sample.wall_seconds / epochs, serial / sample.wall_seconds,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("speedup at 8 threads: %.2fx  ->  %s\n",
              serial / samples.back().wall_seconds, out_path.c_str());
  return deterministic ? 0 : 2;
}
