#ifndef SKETCHML_BENCH_BENCH_UTIL_H_
#define SKETCHML_BENCH_BENCH_UTIL_H_

/// \file
/// Shared plumbing for the experiment-reproduction binaries. Each bench
/// regenerates one table or figure of the paper; this header provides the
/// workloads, cluster presets, and table printers they share.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/codec_factory.h"
#include "dist/network_model.h"
#include "dist/trainer.h"
#include "ml/dataset.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::bench {

/// Ratio between the paper's message sizes (~35 MB raw on KDD10) and this
/// repo's scaled-down workloads (~42 KB). Network presets divide
/// bandwidth by this factor so bytes/bandwidth — the quantity every
/// experiment measures — matches the paper's regime.
inline constexpr double kDataScale = 840.0;

/// A train/test split plus the loss to optimize.
struct Workload {
  std::string dataset;
  std::string model;  // "lr", "svm", "linear".
  ml::Dataset train;
  ml::Dataset test;
  std::unique_ptr<ml::Loss> loss;
};

/// Builds a workload from a dataset preset ("kdd10", "kdd12", "ctr") and
/// a model name, using the paper's 75/25 split.
inline Workload MakeWorkload(const std::string& dataset,
                             const std::string& model, uint64_t seed = 1) {
  ml::SyntheticConfig config = ml::PresetFor(dataset, seed);
  config.regression = (model == "linear");
  ml::Dataset all = ml::GenerateSynthetic(config);
  auto [train, test] = all.Split(0.25);
  Workload w;
  w.dataset = dataset;
  w.model = model;
  w.train = std::move(train);
  w.test = std::move(test);
  w.loss = ml::MakeLoss(model);
  SKETCHML_CHECK(w.loss != nullptr) << "unknown model " << model;
  return w;
}

/// Measured CPU seconds are multiplied by the same data-scale factor as
/// bandwidth is divided by, so the compute:communication ratio of the
/// simulated epoch lands in the paper's regime (their JVM executors also
/// spend more cycles per nonzero than this C++ core does — the extra 2x
/// roughly accounts for that).
inline constexpr double kComputeScale = kDataScale * 2.0;

/// Codec kernels scale with data size divided by the throughput edge of
/// this C++ implementation over the paper's JVM codec (~8x per byte):
/// the paper reports compression costing only ~25 extra CPU points
/// (Fig 8(c)), which pins the codec:network ratio this factor restores.
inline constexpr double kCodecScale = kDataScale / 8.0;

/// Cluster-1 (lab, 1 Gbps), scaled to the workload size.
inline dist::ClusterConfig Cluster1(int workers = 10) {
  dist::ClusterConfig c;
  c.num_workers = workers;
  c.network =
      dist::NetworkModel::Scaled(dist::NetworkModel::Lab1Gbps(), kDataScale);
  c.compute_scale = kComputeScale;
  c.codec_scale = kCodecScale;
  return c;
}

/// Cluster-2 (Tencent production, congested 10 Gbps), scaled.
inline dist::ClusterConfig Cluster2(int workers = 10) {
  dist::ClusterConfig c;
  c.num_workers = workers;
  c.network = dist::NetworkModel::Scaled(
      dist::NetworkModel::Congested10Gbps(), kDataScale);
  c.compute_scale = kComputeScale;
  c.codec_scale = kCodecScale;
  return c;
}

/// Cluster-2 with the dataset's compute share restored. CTR is the
/// paper's computation-heavy workload (§4.3.2: "As each instance of CTR
/// generates more nonzero gradient pairs, the computation cost is much
/// higher" — its Adam epochs are only ~3-4x slower than SketchML's, not
/// 9-10x). Our CTR preset underscales arithmetic much more than message
/// bytes, so it gets a calibrated extra compute factor that puts the
/// compute share of a SketchML epoch in the paper's regime.
inline dist::ClusterConfig Cluster2For(const std::string& dataset,
                                       int workers) {
  dist::ClusterConfig c = Cluster2(workers);
  if (dataset == "ctr") c.compute_scale *= 7.0;
  return c;
}

/// The paper's training protocol, tuned for the scaled-down workloads
/// (see TrainerConfig::adam_epsilon for why epsilon is raised).
inline dist::TrainerConfig DefaultTrainerConfig() {
  dist::TrainerConfig config;
  config.batch_ratio = 0.1;
  config.learning_rate = 0.05;
  config.lambda = 0.01;
  config.adam_epsilon = 0.01;
  // All benches run the simulator on every core: the measured phase
  // seconds and every byte are identical to a serial run (see DESIGN.md
  // "Threading model & determinism"), only harness wall-clock shrinks.
  config.num_threads = 0;
  return config;
}

/// Builds a codec by factory name; checks the name is valid.
inline std::unique_ptr<compress::GradientCodec> Codec(
    const std::string& name,
    const core::SketchMlConfig& config = core::SketchMlConfig()) {
  auto result = core::MakeCodec(name, config);
  SKETCHML_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Trains `epochs` epochs of `workload` with `codec_name` and returns the
/// per-epoch stats.
inline std::vector<dist::EpochStats> Train(
    const Workload& workload, const std::string& codec_name,
    const dist::ClusterConfig& cluster, const dist::TrainerConfig& config,
    int epochs,
    const core::SketchMlConfig& codec_config = core::SketchMlConfig()) {
  dist::DistributedTrainer trainer(&workload.train, &workload.test,
                                   workload.loss.get(),
                                   Codec(codec_name, codec_config), cluster,
                                   config);
  auto result = trainer.Run(epochs);
  SKETCHML_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Mean simulated seconds per epoch over `stats`.
inline double MeanEpochSeconds(const std::vector<dist::EpochStats>& stats) {
  if (stats.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : stats) total += s.TotalSeconds();
  return total / static_cast<double>(stats.size());
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  Rule();
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  Rule();
}

}  // namespace sketchml::bench

#endif  // SKETCHML_BENCH_BENCH_UTIL_H_
