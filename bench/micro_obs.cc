// Micro-benchmarks for the observability layer itself: what a counter
// add, histogram record, or span costs when recording, and — the number
// the <2% overhead budget rests on — what the instrumented hot paths
// cost when observability is disabled (one relaxed atomic load and a
// branch per call site).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/random.h"
#include "common/trace.h"
#include "compress/codec.h"
#include "core/sketchml_codec.h"
#include "sketch/sketch_histogram.h"

namespace {

using namespace sketchml;

void BM_CounterAddEnabled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::Counter c = obs::MetricsRegistry::Global().GetCounter("bench/counter");
  for (auto _ : state) c.Add(1.0);
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_CounterAddEnabled);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  obs::Counter c = obs::MetricsRegistry::Global().GetCounter("bench/counter");
  for (auto _ : state) c.Add(1.0);
}
BENCHMARK(BM_CounterAddDisabled);

// Labeled counters mangle the labels into the slot name at handle
// acquisition, so the per-Add cost must be identical to the unlabeled
// path: same relaxed atomic, same disabled-check branch.
void BM_LabeledCounterAddEnabled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::Counter c = obs::MetricsRegistry::Global().GetCounter(
      "bench/labeled", {{"worker", "3"}, {"phase", "compute"}});
  for (auto _ : state) c.Add(1.0);
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_LabeledCounterAddEnabled);

void BM_LabeledCounterAddDisabled(benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  obs::Counter c = obs::MetricsRegistry::Global().GetCounter(
      "bench/labeled", {{"worker", "3"}, {"phase", "compute"}});
  for (auto _ : state) c.Add(1.0);
}
BENCHMARK(BM_LabeledCounterAddDisabled);

// Handle acquisition itself (name mangling + slot lookup) — not on the
// hot path, but it runs once per entity at trainer construction, so it
// should stay cheap enough to ignore.
void BM_LabeledCounterResolve(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::MetricsRegistry::Global().GetCounter(
        "bench/resolve", {{"worker", "7"}, {"phase", "encode"}}));
  }
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_LabeledCounterResolve);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::Histogram h = obs::MetricsRegistry::Global().GetHistogram("bench/hist");
  double v = 1.0;
  for (auto _ : state) h.Record(v += 3.0);
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_HistogramRecordEnabled);

// Sketch-backed histogram: the enabled path is a mutex lock plus a
// vector push into the thread-local shard buffer (KLL compaction is
// deferred to snapshot/epoch boundaries); the disabled path must stay on
// the same load + branch budget as the other instruments.
void BM_SketchHistogramRecordEnabled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::SketchHistogram h =
      obs::SketchHistogramRegistry::Global().Get("bench/sketch");
  double v = 1.0;
  for (auto _ : state) h.Record(v += 3.0);
  obs::SetMetricsEnabled(false);
  obs::SketchHistogramRegistry::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_SketchHistogramRecordEnabled);

void BM_SketchHistogramRecordDisabled(benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  obs::SketchHistogram h =
      obs::SketchHistogramRegistry::Global().Get("bench/sketch");
  double v = 1.0;
  for (auto _ : state) h.Record(v += 3.0);
  obs::SketchHistogramRegistry::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_SketchHistogramRecordDisabled);

// Labels are mangled into the slot name at handle acquisition, so the
// labeled Record must cost the same as the unlabeled one.
void BM_SketchHistogramRecordLabeled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::SketchHistogram h = obs::SketchHistogramRegistry::Global().Get(
      "bench/sketch_labeled", {{"worker", "3"}});
  double v = 1.0;
  for (auto _ : state) h.Record(v += 3.0);
  obs::SetMetricsEnabled(false);
  obs::SketchHistogramRegistry::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_SketchHistogramRecordLabeled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench", "span");
    benchmark::ClobberMemory();
  }
  obs::SetTracingEnabled(false);
  obs::TraceLog::Global().Reset();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench", "span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

// The causal-context ops added for cross-node tracing ride the same
// disabled-path budget as spans: with tracing off, capturing the current
// context and adopting one on another thread must stay a load + branch.
void BM_CurrentSpanContextDisabled(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::CurrentSpanContext());
  }
}
BENCHMARK(BM_CurrentSpanContextDisabled);

void BM_TraceContextScopeDisabled(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  const obs::SpanContext ctx;  // Invalid — what a disabled capture yields.
  for (auto _ : state) {
    obs::TraceContextScope scope(ctx);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceContextScopeDisabled);

void BM_TraceContextScopeEnabled(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  obs::SpanContext ctx;
  {
    obs::TraceSpan parent("bench", "parent");
    ctx = parent.context();
  }
  for (auto _ : state) {
    obs::TraceContextScope scope(ctx);
    benchmark::ClobberMemory();
  }
  obs::SetTracingEnabled(false);
  obs::TraceLog::Global().Reset();
}
BENCHMARK(BM_TraceContextScopeEnabled);

// A span whose category the --trace-categories filter excludes: records
// nothing, but still pays the filter lookup — the cost of leaving
// instrumentation in place while sampling a single subsystem.
void BM_TraceSpanFilteredOut(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  obs::SetTraceCategories("trainer");
  for (auto _ : state) {
    obs::TraceSpan span("bench", "span");
    benchmark::ClobberMemory();
  }
  obs::SetTraceCategories("");
  obs::SetTracingEnabled(false);
  obs::TraceLog::Global().Reset();
}
BENCHMARK(BM_TraceSpanFilteredOut);

void BM_EmitSpanEnabled(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  uint64_t ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::EmitSpan("bench", "modeled", ts += 10, 5,
                                           {{"attempt", 1.0}, {"bytes", 64.0}}));
  }
  obs::SetTracingEnabled(false);
  obs::TraceLog::Global().Reset();
}
BENCHMARK(BM_EmitSpanEnabled);

common::SparseGradient MakeGradient(size_t nnz) {
  common::Rng rng(5);
  common::SparseGradient grad;
  grad.reserve(nnz);
  uint64_t key = 0;
  for (size_t i = 0; i < nnz; ++i) {
    key += 1 + rng.NextBounded(50);
    grad.push_back({key, rng.NextGaussian()});
  }
  return grad;
}

/// Full codec round trip with observability off vs on — the end-to-end
/// pair the <2% disabled-overhead budget is checked against.
void CodecRoundTrip(benchmark::State& state, bool enabled) {
  obs::SetMetricsEnabled(enabled);
  obs::SetTracingEnabled(enabled);
  core::SketchMlCodec codec;
  const common::SparseGradient grad = MakeGradient(1 << 12);
  for (auto _ : state) {
    compress::EncodedGradient msg;
    common::SparseGradient decoded;
    if (!codec.Encode(grad, &msg).ok() || !codec.Decode(msg, &decoded).ok()) {
      state.SkipWithError("codec round trip failed");
      break;
    }
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * grad.size());
  obs::SetMetricsEnabled(false);
  obs::SetTracingEnabled(false);
  obs::MetricsRegistry::Global().Reset();
  obs::TraceLog::Global().Reset();
}

void BM_SketchMlRoundTripObsOff(benchmark::State& state) {
  CodecRoundTrip(state, false);
}
BENCHMARK(BM_SketchMlRoundTripObsOff);

void BM_SketchMlRoundTripObsOn(benchmark::State& state) {
  CodecRoundTrip(state, true);
}
BENCHMARK(BM_SketchMlRoundTripObsOn);

}  // namespace

BENCHMARK_MAIN();
