// Reproduces Figure 14 (Appendix B.3): SketchML on a neural network.
// An MLP (input 20x20, two fully connected layers of 600, output 10) is
// trained on MNIST-like data with batch size 60; whole-model gradients
// are pushed through each codec and exchanged across 10 simulated
// workers. Panels: (a) short-term and (b) long-term loss vs time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "ml/mlp.h"
#include "ml/synthetic.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kWorkers = 10;
constexpr int kBatch = 60;
constexpr int kSteps = 100;
constexpr double kLearningRate = 0.05;

struct Point {
  double t;
  double loss;
};

std::vector<Point> TrainMlp(const std::string& codec_name,
                            const ml::Dataset& train,
                            const ml::Dataset& test) {
  ml::Mlp mlp({400, 600, 600, 10}, /*seed=*/7);
  auto codec = bench::Codec(codec_name);
  const dist::NetworkModel net = dist::NetworkModel::Lab1Gbps();

  std::vector<Point> curve;
  double t = 0.0;
  common::Stopwatch watch;
  common::SparseGradient grad, decoded;
  for (int step = 0; step < kSteps; ++step) {
    const size_t begin = (static_cast<size_t>(step) * kBatch) % train.size();
    const size_t end = std::min(train.size(), begin + kBatch);

    watch.Restart();
    mlp.ComputeBatchGradient(train, begin, end, &grad);
    t += watch.ElapsedSeconds() / kWorkers;  // Workers share the batch.

    watch.Restart();
    compress::EncodedGradient msg;
    SKETCHML_CHECK(codec->Encode(grad, &msg).ok());
    SKETCHML_CHECK(codec->Decode(msg, &decoded).ok());
    t += watch.ElapsedSeconds();

    // W uploads + W broadcast copies through the driver link. NN
    // gradients are dense and large (~P * 12 bytes raw), so no data-scale
    // haircut is needed: this is already paper-sized traffic.
    for (int w = 0; w < 2 * kWorkers; ++w) {
      t += net.TransferSeconds(msg.size());
    }

    mlp.ApplySgd(decoded, kLearningRate);

    if (step % 10 == 9 || step == 0) {
      curve.push_back({t, mlp.ComputeMeanLoss(test)});
    }
  }
  return curve;
}

}  // namespace

int main() {
  Banner("Neural network (MLP 400-600-600-10, MNIST-like, batch 60)",
         "Figure 14 (Appendix B.3)");

  ml::Dataset all = ml::GenerateSyntheticMnist(3000, 20, 10, /*seed=*/5);
  auto [train, test] = all.Split(0.2);

  Rule();
  std::printf("%-14s %s\n", "method", "(t, test loss) series");
  Rule();
  for (const char* codec : {"sketchml", "adam-double", "zipml-16bit"}) {
    auto curve = TrainMlp(codec, train, test);
    std::printf("%-14s", codec);
    int printed = 0;
    for (const auto& p : curve) {
      std::printf(" (%.1fs, %.3f)", p.t, p.loss);
      if (++printed % 4 == 0 && printed < static_cast<int>(curve.size())) {
        std::printf("\n%-14s", "");
      }
    }
    std::printf("\n");
  }
  Rule();
  std::printf(
      "paper: SketchML and ZipML beat Adam short-term (cheaper epochs);\n"
      "long-term SketchML reaches the lowest loss while ZipML flattens\n"
      "(uniform quantization zeroes the shrinking gradients). NN gains\n"
      "are smaller than on linear models: dense gradients make the key\n"
      "compression redundant and compute takes a larger share.\n");
  return 0;
}
