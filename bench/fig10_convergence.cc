// Reproduces Figure 10: test loss as a function of (simulated) run time
// for SketchML / Adam / ZipML — six panels: {LR, SVM, Linear} x
// {KDD12, CTR}. Each panel prints a (seconds, loss) series per method;
// SketchML needs more epochs to converge but each epoch is far cheaper,
// so at any time budget it sits below the baselines.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

void RunPanel(const std::string& dataset, const std::string& model,
              int workers, int epochs) {
  std::printf("\n[%s, %s, %d workers] test loss vs simulated seconds\n",
              model.c_str(), dataset.c_str(), workers);
  Rule();
  std::printf("%-14s %s\n", "method", "(t, loss) series");
  Rule();
  auto workload = bench::MakeWorkload(dataset, model);
  for (const char* codec : {"sketchml", "adam-double", "zipml-16bit"}) {
    auto config = bench::DefaultTrainerConfig();
    auto stats = bench::Train(workload, codec,
                              bench::Cluster2For(dataset, workers), config,
                              epochs);
    std::printf("%-14s", codec);
    double t = 0.0;
    int printed = 0;
    for (const auto& s : stats) {
      t += s.TotalSeconds();
      // Print every epoch for short runs, every other for long ones.
      if (epochs <= 8 || s.epoch % 2 == 0 || s.epoch == 1) {
        std::printf(" (%.0fs, %.4f)", t, s.test_loss);
        if (++printed % 4 == 0) std::printf("\n%-14s", "");
      }
    }
    std::printf("\n");
  }
  Rule();
}

}  // namespace

int main() {
  Banner("Convergence rate (loss vs run time)",
         "Figure 10(a-f): LR/SVM/Linear on KDD12 and CTR");

  for (const char* dataset : {"kdd12", "ctr"}) {
    for (const char* model : {"lr", "svm", "linear"}) {
      RunPanel(dataset, model, /*workers=*/10, /*epochs=*/10);
    }
  }

  std::printf(
      "\nShape check vs paper: within any fixed time budget SketchML has\n"
      "completed many more epochs than Adam and reaches a lower loss;\n"
      "ZipML sits between them and flattens near the optimum (uniform\n"
      "quantization collapses small gradients, 10(b)/10(f) discussion).\n");
  return 0;
}
