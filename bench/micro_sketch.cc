// Micro-benchmarks (google-benchmark) for the sketch substrate: insert
// and query throughput of the KLL and GK quantile sketches, Count-Min,
// and MinMaxSketch. Not a paper figure — the engineering baseline that
// shows the encode path is compute-cheap relative to network transfer.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "sketch/count_min_sketch.h"
#include "sketch/gk_sketch.h"
#include "sketch/grouped_min_max_sketch.h"
#include "sketch/kll_sketch.h"
#include "sketch/min_max_sketch.h"

namespace {

using namespace sketchml;

std::vector<double> RandomValues(size_t n) {
  common::Rng rng(1);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

void BM_KllUpdate(benchmark::State& state) {
  const auto values = RandomValues(1 << 16);
  for (auto _ : state) {
    sketch::KllSketch sketch(static_cast<int>(state.range(0)));
    for (double v : values) sketch.Update(v);
    benchmark::DoNotOptimize(sketch.Count());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_KllUpdate)->Arg(128)->Arg(256)->Arg(512);

void BM_KllQuantile(benchmark::State& state) {
  const auto values = RandomValues(1 << 16);
  sketch::KllSketch sketch(256);
  sketch.UpdateAll(values);
  double q = 0.0;
  for (auto _ : state) {
    q += 0.001;
    if (q >= 1.0) q = 0.0;
    benchmark::DoNotOptimize(sketch.Quantile(q));
  }
}
BENCHMARK(BM_KllQuantile);

void BM_KllEqualDepthSplits(benchmark::State& state) {
  const auto values = RandomValues(1 << 16);
  sketch::KllSketch sketch(256);
  sketch.UpdateAll(values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.EqualDepthSplits(256));
  }
}
BENCHMARK(BM_KllEqualDepthSplits);

void BM_GkUpdate(benchmark::State& state) {
  const auto values = RandomValues(1 << 14);
  for (auto _ : state) {
    sketch::GkSketch sketch(0.01);
    for (double v : values) sketch.Update(v);
    benchmark::DoNotOptimize(sketch.Count());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_GkUpdate);

void BM_CountMinAdd(benchmark::State& state) {
  sketch::CountMinSketch sketch(2, 1 << 16);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Add(key++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinAdd);

void BM_MinMaxInsert(benchmark::State& state) {
  sketch::MinMaxSketch sketch(static_cast<int>(state.range(0)), 1 << 16);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Insert(key, static_cast<uint8_t>(key % 250));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinMaxInsert)->Arg(2)->Arg(4);

void BM_MinMaxQuery(benchmark::State& state) {
  sketch::MinMaxSketch sketch(2, 1 << 16);
  for (uint64_t k = 0; k < (1 << 16); ++k) {
    sketch.Insert(k, static_cast<uint8_t>(k % 250));
  }
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Query(key++ % (1 << 16)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinMaxQuery);

void BM_GroupedMinMaxInsert(benchmark::State& state) {
  sketch::GroupedMinMaxSketch sketch(256, 8, 2, 1 << 14);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Insert(key, static_cast<int>(key % 256));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupedMinMaxInsert);

}  // namespace

BENCHMARK_MAIN();
