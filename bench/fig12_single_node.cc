// Reproduces Figure 12 (Appendix B.1): comparison with a single-node
// system. The paper runs SkLearn on one machine vs SketchML on 5 and 10
// machines (KDD10, LR/SVM/Linear, 20 epochs end-to-end).
//
// The single-node stand-in is the same loss/optimizer stack run serially
// (one worker, in-process "network" with zero cost) — the comparison
// point is "one node, no communication".

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kEpochs = 20;

double RunSingleNode(const char* model) {
  auto workload = bench::MakeWorkload("kdd10", model);
  auto config = bench::DefaultTrainerConfig();
  config.evaluate_test_loss = false;
  dist::ClusterConfig cluster;
  cluster.num_workers = 1;
  cluster.network = {1e9, 0.0, 1.0};  // In-process: effectively free.
  cluster.compute_scale = bench::kComputeScale;
  cluster.codec_scale = bench::kCodecScale;
  auto stats = bench::Train(workload, "adam-double", cluster, config,
                            kEpochs);
  return dist::Aggregate(stats).TotalSeconds();
}

double RunSketchMl(const char* model, int workers) {
  auto workload = bench::MakeWorkload("kdd10", model);
  auto config = bench::DefaultTrainerConfig();
  config.evaluate_test_loss = false;
  auto stats = bench::Train(workload, "sketchml", bench::Cluster1(workers),
                            config, kEpochs);
  return dist::Aggregate(stats).TotalSeconds();
}

}  // namespace

int main() {
  Banner("Distributed SketchML vs a single-node system (KDD10, 20 epochs)",
         "Figure 12 (Appendix B.1)");

  Rule();
  std::printf("%-10s %14s %14s %14s\n", "model", "single-node",
              "SketchML-5", "SketchML-10");
  Rule();
  for (const char* model : {"lr", "svm", "linear"}) {
    const double single = RunSingleNode(model);
    const double five = RunSketchMl(model, 5);
    const double ten = RunSketchMl(model, 10);
    std::printf("%-10s %13.1fs %13.1fs %13.1fs   (%.1fx, %.1fx)\n", model,
                single, five, ten, single / five, single / ten);
  }
  Rule();
  std::printf(
      "paper: SketchML-5 is 2.1/2.7/2.0x faster than SkLearn; SketchML-10\n"
      "adds another 1.3-1.6x. Expected shape: distribution wins despite\n"
      "communication overhead because compute is divided across workers\n"
      "and messages are compressed.\n");
  return 0;
}
