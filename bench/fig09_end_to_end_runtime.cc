// Reproduces Figure 9: end-to-end run time per epoch of SketchML vs
// Adam vs ZipML on Cluster-2 (congested 10 Gbps production cluster).
//
//   9(a) KDD12 dataset, 10 executors;
//   9(b) CTR dataset (denser gradients, compute-heavy), 50 executors.

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kEpochs = 3;

void RunPanel(const char* dataset, int workers, const char* paper_note) {
  // One workload per model, shared by all codecs.
  std::map<std::string, std::map<std::string, double>> seconds;
  for (const char* model : {"lr", "svm", "linear"}) {
    auto workload = bench::MakeWorkload(dataset, model);
    for (const char* codec : {"sketchml", "adam-double", "zipml-16bit"}) {
      auto config = bench::DefaultTrainerConfig();
      config.evaluate_test_loss = false;
      auto stats = bench::Train(workload, codec,
                                bench::Cluster2For(dataset, workers), config,
                                kEpochs);
      seconds[codec][model] = bench::MeanEpochSeconds(stats);
    }
  }

  std::printf("\n[%s, %d workers] simulated seconds per epoch\n", dataset,
              workers);
  Rule();
  std::printf("%-14s %10s %10s %10s\n", "method", "LR", "SVM", "Linear");
  Rule();
  for (const char* codec : {"sketchml", "adam-double", "zipml-16bit"}) {
    std::printf("%-14s %10.1f %10.1f %10.1f\n", codec,
                seconds[codec]["lr"], seconds[codec]["svm"],
                seconds[codec]["linear"]);
  }
  Rule();
  std::printf("%s\n", paper_note);
}

}  // namespace

int main() {
  Banner("End-to-end run time (Cluster-2, congested 10 Gbps)",
         "Figure 9(a) KDD12 and 9(b) CTR");

  RunPanel("kdd12", 10,
           "paper 9(a): SketchML 100/132/96, Adam 1041/1245/903,\n"
           "            ZipML 278/594/330 (SketchML 9-10x vs Adam,\n"
           "            ~3-4x vs ZipML)");
  RunPanel("ctr", 50,
           "paper 9(b): SketchML 34/17/32, Adam 130/79/97, ZipML 91/66/78\n"
           "            (smaller speedup: CTR is denser, so compute takes\n"
           "            a larger share of the epoch)");
  return 0;
}
