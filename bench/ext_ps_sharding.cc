// Extension ablation (beyond the paper): parameter-server sharding vs
// the paper's single Spark driver. The paper's Figure 11 shows Adam
// degrading at 50 workers because every gradient funnels through one
// driver NIC; the parameter-server architecture it cites [22] spreads
// the gather over S server shards. This bench quantifies how much of
// Adam's scalability cliff sharding recovers — and shows that SketchML's
// compression still wins on top of it (the two attack the same bytes
// from different angles and compose).

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kEpochs = 2;

}  // namespace

int main() {
  Banner("Parameter-server sharding ablation (KDD12, LR, 50 workers)",
         "extension of Figure 11 / the PS architecture of [22]");

  Rule();
  std::printf("%-14s %10s %10s %10s %12s\n", "method", "S=1", "S=4", "S=16",
              "bytes up MB");
  Rule();
  for (const char* codec : {"adam-double", "sketchml"}) {
    std::printf("%-14s", codec);
    double bytes_mb = 0;
    for (int servers : {1, 4, 16}) {
      auto workload = bench::MakeWorkload("kdd12", "lr");
      auto cluster = bench::Cluster2(50);
      cluster.num_servers = servers;
      auto config = bench::DefaultTrainerConfig();
      config.evaluate_test_loss = false;
      auto stats =
          bench::Train(workload, codec, cluster, config, kEpochs);
      std::printf(" %10.1f", bench::MeanEpochSeconds(stats));
      bytes_mb = dist::Aggregate(stats).bytes_up / 1e6 / kEpochs;
    }
    std::printf(" %12.2f\n", bytes_mb);
  }
  Rule();
  std::printf(
      "Reading: sharding the gather path recovers most of the raw\n"
      "baseline's 50-worker cliff, but moves the same bytes; SketchML\n"
      "shrinks the bytes themselves, so it is faster at every S and the\n"
      "two techniques compose.\n");
  return 0;
}
