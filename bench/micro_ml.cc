// Micro-benchmarks for the ML substrate: AoS vs CSR gradient kernels,
// Adam application, loss evaluation, and synthetic-data generation
// throughput. Engineering baselines, not paper figures.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "ml/csr_matrix.h"
#include "ml/gradient.h"
#include "ml/loss.h"
#include "ml/optimizer.h"
#include "ml/synthetic.h"

namespace {

using namespace sketchml;

const ml::Dataset& TestData() {
  static const ml::Dataset* data = [] {
    ml::SyntheticConfig config;
    config.num_instances = 20000;
    config.dim = 1 << 17;
    config.avg_nnz = 40;
    config.seed = 3;
    return new ml::Dataset(ml::GenerateSynthetic(config));
  }();
  return *data;
}

ml::DenseVector RandomWeights(uint64_t dim) {
  common::Rng rng(5);
  ml::DenseVector w(dim);
  for (auto& x : w) x = rng.NextGaussian() * 0.1;
  return w;
}

void BM_BatchGradientAos(benchmark::State& state) {
  const auto& data = TestData();
  const auto w = RandomWeights(data.dim());
  ml::LogisticLoss loss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::ComputeBatchGradient(loss, w, data, 0, 2000, 0.01));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BatchGradientAos);

void BM_BatchGradientCsr(benchmark::State& state) {
  const auto& data = TestData();
  const auto matrix = ml::CsrMatrix::FromDataset(data);
  const auto w = RandomWeights(data.dim());
  ml::LogisticLoss loss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::ComputeBatchGradientCsr(loss, w, matrix, 0, 2000, 0.01));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BatchGradientCsr);

void BM_AdamApply(benchmark::State& state) {
  const auto& data = TestData();
  ml::LogisticLoss loss;
  const auto w = RandomWeights(data.dim());
  const auto grad = ml::ComputeBatchGradient(loss, w, data, 0, 2000, 0.01);
  ml::AdamOptimizer opt(data.dim(), 0.05);
  for (auto _ : state) {
    opt.Apply(grad);
  }
  state.SetItemsProcessed(state.iterations() * grad.size());
}
BENCHMARK(BM_AdamApply);

void BM_MeanLoss(benchmark::State& state) {
  const auto& data = TestData();
  const auto w = RandomWeights(data.dim());
  ml::LogisticLoss loss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::ComputeMeanLoss(loss, w, data, 0.01));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_MeanLoss);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    ml::SyntheticConfig config;
    config.num_instances = 2000;
    config.dim = 1 << 16;
    config.avg_nnz = 40;
    benchmark::DoNotOptimize(ml::GenerateSynthetic(config));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SyntheticGeneration);

}  // namespace

BENCHMARK_MAIN();
