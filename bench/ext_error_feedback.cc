// Extension ablation (beyond the paper): error-feedback residual
// compensation, the mechanism 1-bit SGD [39] pairs with its aggressive
// quantizer. Measured questions:
//   1. does error feedback rescue the 1-bit baseline the paper
//      dismisses as "too aggressive ... to get converged" (§1.1)?
//   2. does it compose with SketchML's biased (decaying) quantizer?
//   3. how does it interact with Adam's normalized steps?
// Single-worker training loop (the residual state is per sender), LR on
// a KDD10-like dataset, identical step counts for every variant.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "compress/error_feedback_codec.h"
#include "ml/gradient.h"
#include "ml/optimizer.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

double TrainAndReturnLoss(const std::string& codec_name, bool with_feedback,
                          bool use_adam, const ml::Dataset& train,
                          const ml::Loss& loss) {
  std::unique_ptr<compress::GradientCodec> codec = bench::Codec(codec_name);
  if (with_feedback) {
    codec = std::make_unique<compress::ErrorFeedbackCodec>(std::move(codec));
  }
  std::unique_ptr<ml::Optimizer> opt;
  if (use_adam) {
    opt = std::make_unique<ml::AdamOptimizer>(train.dim(), 0.05, 0.9, 0.999,
                                              0.01);
  } else {
    opt = std::make_unique<ml::SgdOptimizer>(train.dim(), 5.0);
  }
  const size_t batch = train.size() / 10;
  compress::EncodedGradient msg;
  common::SparseGradient decoded;
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (size_t b = 0; b + batch <= train.size(); b += batch) {
      auto grad = ml::ComputeBatchGradient(loss, opt->weights(), train, b,
                                           b + batch, 0.01);
      SKETCHML_CHECK(codec->Encode(grad, &msg).ok());
      SKETCHML_CHECK(codec->Decode(msg, &decoded).ok());
      opt->Apply(decoded);
    }
  }
  return ml::ComputeMeanLoss(loss, opt->weights(), train, 0.01);
}

}  // namespace

int main() {
  Banner("Error-feedback ablation (KDD10-like, LR, 6 epochs, 1 worker)",
         "extension; mechanism of 1-bit SGD [39] vs SketchML's Adam fix");

  auto workload = bench::MakeWorkload("kdd10", "lr");

  Rule();
  std::printf("%-14s %12s %12s %12s %12s\n", "codec", "sgd", "sgd+ef",
              "adam", "adam+ef");
  Rule();
  for (const char* codec : {"adam-double", "onebit", "sketchml"}) {
    std::printf("%-14s", codec);
    for (const bool use_adam : {false, true}) {
      for (const bool ef : {false, true}) {
        std::printf(" %12.4f",
                    TrainAndReturnLoss(codec, ef, use_adam, workload.train,
                                       *workload.loss));
      }
    }
    std::printf("\n");
  }
  Rule();
  std::printf(
      "Findings (measured, not assumed; the SGD learning rate is tuned\n"
      "for the compressed codecs' decayed magnitudes, so raw gradients\n"
      "oscillate in the sgd column — compare within rows):\n"
      " * error feedback rescues the 1-bit codec under plain SGD — the\n"
      "   original [39] recipe: the residual re-transmits the magnitudes\n"
      "   each sign-only message drops;\n"
      " * it does NOT compose with SketchML: the quantile buckets adapt\n"
      "   to the residual-inflated stream, so the compensation chases its\n"
      "   own tail and diverges under SGD (and degrades under Adam);\n"
      " * the paper's own compensation for MinMax decay — Adam's\n"
      "   per-dimension step normalization plus grouping (§3.3 Solution\n"
      "   2) — is the right fit for an adaptive quantizer: sketchml+adam\n"
      "   sits close to the uncompressed baseline with no extra state.\n");
  return 0;
}
