// Reproduces Figure 11: scalability — run time per epoch as the number
// of workers grows from 5 to 10 to 50 (KDD12, Cluster-2).
//
// The mechanism: per-worker compute shrinks with W, but the driver's
// link carries W gradient messages per batch. For raw gradients (Adam)
// the added communication overwhelms the computation saving at 50
// workers; the compressed codecs keep scaling.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kEpochs = 2;

}  // namespace

int main() {
  Banner("Scalability with worker count (KDD12, Cluster-2)",
         "Figure 11(a) LR, 11(b) SVM, 11(c) Linear");

  for (const char* model : {"lr", "svm", "linear"}) {
    std::printf("\n[%s] simulated seconds per epoch\n", model);
    Rule();
    std::printf("%-14s %10s %10s %10s\n", "method", "W=5", "W=10", "W=50");
    Rule();
    for (const char* codec : {"sketchml", "adam-double", "zipml-16bit"}) {
      std::printf("%-14s", codec);
      for (int workers : {5, 10, 50}) {
        auto workload = bench::MakeWorkload("kdd12", model);
        auto config = bench::DefaultTrainerConfig();
        config.evaluate_test_loss = false;
        auto stats = bench::Train(workload, codec, bench::Cluster2(workers),
                                  config, kEpochs);
        std::printf(" %10.1f", bench::MeanEpochSeconds(stats));
      }
      std::printf("\n");
    }
    Rule();
  }
  std::printf(
      "\nShape check vs paper: all methods speed up from 5 -> 10 workers;\n"
      "at 50 workers Adam DEGRADES (communication through the driver\n"
      "overwhelms the compute saving) while SketchML and ZipML continue\n"
      "to improve or hold.\n");
  return 0;
}
