// Validates the paper's analytical results and ablates its design
// decisions against measurements:
//
//   A.1 / Theorem A.2  — quantile-bucket quantization variance bound
//                        d/(4q) (phi_min^2 + phi_max^2);
//   A.2 / Eq. (2)      — MinMaxSketch correctness rate closed form;
//   A.3                — expected delta-key bytes ceil(log2(rD/d) / 8);
//   §3.3 Motivation    — ablation: additive Count-Min insertion amplifies
//                        bucket indexes, MinMax never does;
//   §3.3 Problem 1     — ablation: sign separation on/off (reversed
//                        gradients);
//   §3.3 Problem 2     — ablation: grouping r = 1 vs 8 (vanishing
//                        gradients / decode error);
//   §5                 — 1-bit threshold truncation destroys magnitude
//                        information (why the paper rejects it).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/bit_util.h"
#include "common/random.h"
#include "compress/delta_binary_key_codec.h"
#include "compress/one_bit_codec.h"
#include "compress/quantile_bucket_quantizer.h"
#include "core/sketchml_codec.h"
#include "sketch/count_min_sketch.h"
#include "sketch/min_max_sketch.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

std::vector<double> SkewedValues(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.NextBernoulli(0.9) ? rng.NextGaussian() * 0.01
                               : rng.NextGaussian() * 0.3;
  }
  return v;
}

common::SparseGradient RandomGradient(size_t d, uint64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < d) keys.insert(rng.NextBounded(dim));
  common::SparseGradient grad;
  auto values = SkewedValues(d, seed + 1);
  size_t i = 0;
  for (uint64_t k : keys) grad.push_back({k, values[i++]});
  return grad;
}

void VarianceBound() {
  std::printf("\n[Theorem A.2] quantization variance vs bound\n");
  Rule();
  std::printf("%8s %16s %16s %8s\n", "q", "measured E||.||^2",
              "bound d(p2)/4q", "ok");
  Rule();
  const auto values = SkewedValues(50000, 41);
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (int q : {16, 64, 256}) {
    auto quant = compress::QuantileBucketQuantizer::Build(values, q, 512);
    double err = 0.0;
    for (double v : values) err += std::pow(v - quant.Quantize(v), 2);
    const double bound =
        static_cast<double>(values.size()) / (4.0 * q) * (lo * lo + hi * hi);
    std::printf("%8d %16.4f %16.4f %8s\n", q, err, bound,
                err <= bound ? "yes" : "NO");
  }
  Rule();
}

void CorrectnessRate() {
  std::printf("\n[Eq. (2)] MinMaxSketch correctness rate vs closed form\n");
  Rule();
  std::printf("%6s %6s %8s %12s %12s\n", "rows", "cols", "items",
              "measured", "Eq.(2) bound");
  Rule();
  struct Shape {
    int rows, cols, items;
  };
  for (const Shape s : {Shape{2, 200, 1000}, Shape{2, 500, 1000},
                        Shape{4, 200, 1000}, Shape{2, 1000, 5000}}) {
    sketch::MinMaxSketch mm(s.rows, s.cols, 99 + s.rows * s.cols);
    for (int l = 0; l < s.items; ++l) {
      mm.Insert(static_cast<uint64_t>(l) * 2654435761ULL + 3,
                static_cast<uint8_t>(l * 250 / s.items));
    }
    int correct = 0;
    for (int l = 0; l < s.items; ++l) {
      if (mm.Query(static_cast<uint64_t>(l) * 2654435761ULL + 3) ==
          static_cast<uint8_t>(l * 250 / s.items)) {
        ++correct;
      }
    }
    double expected = 0.0;
    for (int l = 1; l <= s.items; ++l) {
      const double p_row = std::pow(1.0 - 1.0 / s.cols, s.items - l);
      expected += 1.0 - std::pow(1.0 - p_row, s.rows);
    }
    expected /= s.items;
    std::printf("%6d %6d %8d %11.1f%% %11.1f%%\n", s.rows, s.cols, s.items,
                100.0 * correct / s.items, 100.0 * expected);
  }
  Rule();
  std::printf("Eq. (2) is a lower bound; measured rates sit at or above "
              "it.\n");
}

void BytesPerKey() {
  std::printf("\n[A.3] delta-binary bytes per key vs expectation\n");
  Rule();
  std::printf("%12s %10s %14s %18s\n", "D", "d", "measured B/key",
              "ceil(lg(rD/d)/8)+1/4");
  Rule();
  common::Rng rng(43);
  const int r = 8;
  for (const auto& [dim, d] : std::vector<std::pair<uint64_t, size_t>>{
           {1 << 16, 8000}, {1 << 20, 40000}, {1 << 24, 40000}}) {
    std::set<uint64_t> keys;
    while (keys.size() < d) keys.insert(rng.NextBounded(dim));
    std::vector<uint64_t> sorted(keys.begin(), keys.end());
    // Per-group keys: every r-th key lands in the same group on average.
    std::vector<uint64_t> group;
    for (size_t i = 0; i < sorted.size(); i += r) group.push_back(sorted[i]);
    const double measured =
        static_cast<double>(
            compress::DeltaBinaryKeyCodec::EncodedSize(group)) /
        static_cast<double>(group.size());
    const double expected =
        std::ceil(std::log2(static_cast<double>(r) * dim / d) / 8.0) + 0.25;
    std::printf("%12llu %10zu %14.2f %18.2f\n",
                static_cast<unsigned long long>(dim), d, measured, expected);
  }
  Rule();
  std::printf("paper measures ~1.27 bytes/key at d/D of a few percent.\n");
}

void CountMinVsMinMax() {
  std::printf("\n[§3.3 ablation] additive Count-Min vs MinMax insertion\n");
  Rule();
  common::Rng rng(47);
  const int n = 5000, cols = 1000, rows = 2;
  sketch::CountMinSketch cm(rows, cols, 7);
  sketch::MinMaxSketch mm(rows, cols, 7);
  std::vector<uint8_t> truth(n);
  for (int k = 0; k < n; ++k) {
    truth[k] = static_cast<uint8_t>(rng.NextBounded(250));
    cm.Add(static_cast<uint64_t>(k), truth[k]);
    mm.Insert(static_cast<uint64_t>(k), truth[k]);
  }
  int cm_amplified = 0, mm_amplified = 0;
  double cm_err = 0, mm_err = 0;
  for (int k = 0; k < n; ++k) {
    const auto cm_q = cm.Query(static_cast<uint64_t>(k));
    const auto mm_q = mm.Query(static_cast<uint64_t>(k));
    if (cm_q > truth[k]) ++cm_amplified;
    if (mm_q > truth[k]) ++mm_amplified;
    cm_err += std::abs(static_cast<double>(cm_q) - truth[k]);
    mm_err += std::abs(static_cast<double>(mm_q) - truth[k]);
  }
  std::printf("count-min: %5.1f%% of decoded indexes AMPLIFIED, mean |err| "
              "%.1f\n",
              100.0 * cm_amplified / n, cm_err / n);
  std::printf("min-max:   %5.1f%% amplified (always 0 by construction), "
              "mean |err| %.1f\n",
              100.0 * mm_amplified / n, mm_err / n);
  Rule();
  std::printf("Amplified bucket indexes decode to amplified gradients and\n"
              "diverge SGD — the paper's reason for rejecting frequency\n"
              "sketches (§3.3 Motivation).\n");
}

void SignSeparation() {
  std::printf("\n[§3.3 Problem 1 ablation] sign separation on/off\n");
  Rule();
  auto grad = RandomGradient(20000, 1 << 22, 53);
  for (bool separate : {true, false}) {
    core::SketchMlConfig config;
    config.separate_signs = separate;
    config.col_ratio = 0.1;
    core::SketchMlCodec codec(config);
    compress::EncodedGradient msg;
    SKETCHML_CHECK(codec.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    SKETCHML_CHECK(codec.Decode(msg, &decoded).ok());
    int reversed = 0;
    for (size_t i = 0; i < grad.size(); ++i) {
      if (grad[i].value * decoded[i].value < 0 &&
          std::abs(grad[i].value) > 1e-9) {
        ++reversed;
      }
    }
    std::printf("separate_signs=%-5s reversed gradients: %5.2f%%\n",
                separate ? "true" : "false",
                100.0 * reversed / static_cast<double>(grad.size()));
  }
  Rule();
}

void Grouping() {
  std::printf("\n[§3.3 Problem 2 ablation] grouping r = 1 vs 8 vs 32\n");
  Rule();
  auto grad = RandomGradient(20000, 1 << 22, 59);
  std::printf("%6s %18s %14s\n", "r", "rel L2 value err", "msg bytes");
  for (int r : {1, 8, 32}) {
    core::SketchMlConfig config;
    config.num_groups = r;
    config.col_ratio = 0.1;
    core::SketchMlCodec codec(config);
    compress::EncodedGradient msg;
    SKETCHML_CHECK(codec.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    SKETCHML_CHECK(codec.Decode(msg, &decoded).ok());
    double num = 0, den = 0;
    for (size_t i = 0; i < grad.size(); ++i) {
      num += std::pow(grad[i].value - decoded[i].value, 2);
      den += std::pow(grad[i].value, 2);
    }
    std::printf("%6d %17.1f%% %14zu\n", r, 100.0 * num / den, msg.size());
  }
  Rule();
  std::printf("Grouping caps the decoded-index error at q/r: the value\n"
              "error falls steadily with r at a small message-size cost.\n");
}

void OneBitDestroysMagnitudes() {
  std::printf("\n[§5 ablation] 1-bit threshold truncation\n");
  Rule();
  auto grad = RandomGradient(10000, 1 << 20, 61);
  compress::OneBitCodec onebit;
  compress::EncodedGradient msg;
  SKETCHML_CHECK(onebit.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  SKETCHML_CHECK(onebit.Decode(msg, &decoded).ok());
  double num = 0, den = 0;
  for (size_t i = 0; i < grad.size(); ++i) {
    num += std::pow(grad[i].value - decoded[i].value, 2);
    den += std::pow(grad[i].value, 2);
  }
  core::SketchMlCodec sketchml;
  SKETCHML_CHECK(sketchml.Encode(grad, &msg).ok());
  common::SparseGradient decoded2;
  SKETCHML_CHECK(sketchml.Decode(msg, &decoded2).ok());
  double num2 = 0;
  for (size_t i = 0; i < grad.size(); ++i) {
    num2 += std::pow(grad[i].value - decoded2[i].value, 2);
  }
  std::printf("relative L2 error: onebit %.1f%%  sketchml %.1f%%\n",
              100.0 * num / den, 100.0 * num2 / den);
  Rule();
  std::printf("One bit per value erases the magnitude distribution — \"too\n"
              "aggressive for SGD to converge\" (§1.1); SketchML keeps the\n"
              "error substantially lower at comparable size.\n");
}

}  // namespace

int main() {
  Banner("Theory validation and design-choice ablations",
         "Appendix A.1-A.3, §3.3, §5");
  VarianceBound();
  CorrectnessRate();
  BytesPerKey();
  CountMinVsMinMax();
  SignSeparation();
  Grouping();
  OneBitDestroysMagnitudes();
  return 0;
}
