// Reproduces Table 4 (Appendix B.4): the effect of the transmitted
// weight type — SketchML vs ZipML-8bit vs ZipML-16bit vs Adam-float vs
// Adam-double — on KDD12 / LR. Reports seconds per epoch and the minimal
// test loss reached within a fixed simulated-time budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kMaxEpochs = 15;

}  // namespace

int main() {
  Banner("Weight types (KDD12, LR)", "Table 4 (Appendix B.4)");

  const char* codecs[] = {"sketchml", "zipml-8bit", "zipml-16bit",
                          "adam-float", "adam-double"};
  std::vector<std::vector<dist::EpochStats>> series;
  double slowest_total = 0.0;
  for (const char* codec : codecs) {
    auto workload = bench::MakeWorkload("kdd12", "lr");
    auto config = bench::DefaultTrainerConfig();
    series.push_back(bench::Train(workload, codec, bench::Cluster2(10),
                                  config, kMaxEpochs));
    slowest_total =
        std::max(slowest_total, dist::Aggregate(series.back()).TotalSeconds());
  }

  // The paper gave every method the same two-hour budget; we use 60% of
  // the slowest method's total so the fast codecs get extra epochs' worth
  // of headroom, exactly like the original protocol.
  const double budget = slowest_total * 0.6;
  Rule();
  std::printf("time budget: %.0f simulated seconds\n", budget);
  Rule();
  std::printf("%-14s %14s %18s\n", "method", "sec/epoch",
              "min loss in budget");
  Rule();
  for (size_t i = 0; i < series.size(); ++i) {
    double t = 0.0, best = 1e18;
    for (const auto& s : series[i]) {
      t += s.TotalSeconds();
      if (t > budget) break;
      best = std::min(best, s.test_loss);
    }
    std::printf("%-14s %14.1f %18.4f\n", codecs[i],
                bench::MeanEpochSeconds(series[i]), best);
  }
  Rule();
  std::printf(
      "paper: s/epoch 100 / 231 / 278 / 725 / 1041 and losses 0.6905 /\n"
      "0.6932 / 0.6919 / 0.6911 / 0.6914 — SketchML fastest per epoch\n"
      "(2.3x vs ZipML, 7-10x vs Adam) and best loss within the budget;\n"
      "ZipML-8bit is faster than 16bit per epoch but converges worse.\n");
  return 0;
}
