// Reproduces Figure 4: the nonuniform distribution of gradient values.
//
// The paper trains a public dataset (KDD10) with SGD and plots a
// histogram of the first generated gradient: values concentrate in a
// small range near zero, so uniform quantization wastes its levels.
// This binary prints the same histogram plus the concentration stats
// that motivate quantile-bucket quantification (§3.2).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "ml/gradient.h"

namespace {

using sketchml::bench::Banner;
using sketchml::bench::MakeWorkload;
using sketchml::bench::Rule;

}  // namespace

int main() {
  Banner("Gradient value distribution",
         "Figure 4 (nonuniform gradient values, KDD10 + SGD)");

  auto workload = MakeWorkload("kdd10", "lr");
  sketchml::ml::DenseVector w(workload.train.dim(), 0.0);
  // "We ... select the first generated gradient": one mini-batch at the
  // initial model.
  const size_t batch = workload.train.size() / 10;
  auto grad = sketchml::ml::ComputeBatchGradient(
      *workload.loss, w, workload.train, 0, batch, /*lambda=*/0.01);

  std::vector<double> values;
  values.reserve(grad.size());
  double lo = 0, hi = 0;
  for (const auto& p : grad) {
    values.push_back(p.value);
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  std::printf("nonzero gradient values d = %zu, range [%.4f, %.4f]\n",
              values.size(), lo, hi);
  std::printf("(paper's example range: [-0.353, 0.004], most values near "
              "zero)\n\n");

  sketchml::common::Histogram hist(lo, hi, 20);
  hist.AddAll(values);
  std::printf("%s\n", hist.ToAscii(56).c_str());

  // Concentration statistics: the fraction of values within epsilon of 0.
  std::vector<double> magnitudes;
  magnitudes.reserve(values.size());
  for (double v : values) magnitudes.push_back(std::abs(v));
  std::sort(magnitudes.begin(), magnitudes.end());
  const double span = std::max(std::abs(lo), std::abs(hi));
  Rule();
  std::printf("%-44s %10s\n", "concentration", "fraction");
  Rule();
  for (double frac : {0.01, 0.05, 0.10, 0.25}) {
    const double cutoff = span * frac;
    const auto it =
        std::upper_bound(magnitudes.begin(), magnitudes.end(), cutoff);
    std::printf("|v| < %5.1f%% of max magnitude (%.5f)    %9.1f%%\n",
                frac * 100, cutoff,
                100.0 * static_cast<double>(it - magnitudes.begin()) /
                    static_cast<double>(magnitudes.size()));
  }
  Rule();
  std::printf("Shape check vs paper: the overwhelming majority of values\n"
              "sit within a few percent of the max magnitude -> gradients\n"
              "are NOT uniformly distributed; uniform quantization grids\n"
              "collapse them (motivation for quantile-bucket encoding).\n");
  return 0;
}
