// Reproduces Table 2: model accuracy — the minimal loss reached and the
// (simulated) time to convergence on KDD12, for SketchML / Adam / ZipML.
// "An algorithm is considered as converged if the variation of loss is
// less than 1% within five epochs." (§4.4)

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kMaxEpochs = 25;

struct Outcome {
  double min_loss = 0.0;
  double converged_seconds = 0.0;
  int converged_epoch = 0;
};

Outcome RunUntilConverged(const std::string& dataset,
                          const std::string& model, const char* codec) {
  auto workload = bench::MakeWorkload(dataset, model);
  auto config = bench::DefaultTrainerConfig();
  dist::DistributedTrainer trainer(&workload.train, &workload.test,
                                   workload.loss.get(), bench::Codec(codec),
                                   bench::Cluster2(10), config);
  Outcome out;
  std::vector<double> losses;
  double t = 0.0;
  out.min_loss = 1e18;
  for (int e = 0; e < kMaxEpochs; ++e) {
    auto stats = trainer.RunEpoch();
    SKETCHML_CHECK(stats.ok());
    t += stats->TotalSeconds();
    losses.push_back(stats->test_loss);
    out.min_loss = std::min(out.min_loss, stats->test_loss);
    if (losses.size() >= 5) {
      const double head = losses[losses.size() - 5];
      const double tail = losses.back();
      if (head > 0 && std::abs(head - tail) / head < 0.01) {
        out.converged_seconds = t;
        out.converged_epoch = e + 1;
        return out;
      }
    }
  }
  out.converged_seconds = t;
  out.converged_epoch = kMaxEpochs;
  return out;
}

}  // namespace

int main() {
  Banner("Model accuracy: min loss / time to converge (KDD12)",
         "Table 2");

  Rule();
  std::printf("%-8s %-14s %12s %14s %8s\n", "model", "method", "min loss",
              "converge (s)", "epochs");
  Rule();
  for (const char* model : {"lr", "svm", "linear"}) {
    for (const char* codec : {"sketchml", "adam-double", "zipml-16bit"}) {
      const Outcome out = RunUntilConverged("kdd12", model, codec);
      std::printf("%-8s %-14s %12.4f %14.1f %8d\n", model, codec,
                  out.min_loss, out.converged_seconds, out.converged_epoch);
    }
    Rule();
  }
  std::printf(
      "paper: all three methods converge to almost the same loss\n"
      "  (LR 0.6885-0.6887, SVM 0.9784-0.9788, Linear 0.2109-0.2111);\n"
      "  SketchML converges 2-5x sooner in wall time (8.1h vs 23h/11h on\n"
      "  LR). Expected shape here: near-equal min loss per model, with\n"
      "  sketchml reaching it in the least simulated time.\n");
  return 0;
}
