// Reproduces Figure 13 + Table 3 (Appendix B.2): sensitivity of SketchML
// to its hyper-parameters on KDD12 / Linear regression:
//   - quantile sketch size (128 vs 256),
//   - MinMaxSketch rows (2 vs 4),
//   - MinMaxSketch columns (d/5 vs d/2).
// Reported per variant: seconds per epoch (Table 3) and the loss
// trajectory against simulated time (Figure 13).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kEpochs = 8;

struct Variant {
  const char* label;
  core::SketchMlConfig config;
};

void Run(const Variant& variant) {
  auto workload = bench::MakeWorkload("kdd12", "linear");
  auto config = bench::DefaultTrainerConfig();
  auto stats = bench::Train(workload, "sketchml", bench::Cluster2(10),
                            config, kEpochs, variant.config);
  std::printf("%-12s %11.1f   ", variant.label,
              bench::MeanEpochSeconds(stats));
  double t = 0.0;
  for (const auto& s : stats) {
    t += s.TotalSeconds();
    if (s.epoch % 2 == 0) std::printf("(%.0fs, %.4f) ", t, s.test_loss);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("Hyper-parameter sensitivity (KDD12, Linear)",
         "Figure 13 and Table 3 (Appendix B.2)");

  std::vector<Variant> variants;
  {
    Variant v{"default", core::SketchMlConfig()};
    v.config.quantile_sketch_k = 128;
    variants.push_back(v);
  }
  {
    Variant v{"quan_256", core::SketchMlConfig()};
    v.config.quantile_sketch_k = 256;
    variants.push_back(v);
  }
  {
    Variant v{"row_4", core::SketchMlConfig()};
    v.config.rows = 4;
    variants.push_back(v);
  }
  {
    Variant v{"col_d/2", core::SketchMlConfig()};
    v.config.col_ratio = 0.5;
    variants.push_back(v);
  }

  Rule();
  std::printf("%-12s %11s   %s\n", "variant", "sec/epoch",
              "(t, test loss) every 2 epochs");
  Rule();
  for (const auto& v : variants) Run(v);
  Rule();
  std::printf(
      "paper (Table 3, s/epoch): default 360, quan_256 353, row_4 420,\n"
      "col_d/2 383. Shape: a larger quantile sketch slightly improves\n"
      "convergence at ~no time cost; more rows cost communication and\n"
      "slow the epoch; d/2 columns cost bytes but improve accuracy.\n");
  return 0;
}
