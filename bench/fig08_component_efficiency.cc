// Reproduces Figure 8: efficiency of the proposed components on the
// KDD10 workload, Cluster-1 (10 executors, 1 Gbps lab network).
//
//   8(a) run time per epoch, consolidating components one by one:
//        Adam -> +Key (delta-binary) -> +Quan (quantile-bucket)
//        -> +MinMax (full SketchML), for LR / SVM / Linear;
//   8(b) average message size and compression rate (LR);
//   8(c) CPU overhead, average and peak;
//   8(d) impact of batch ratio on gradient sparsity, run time, and
//        bytes per key.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "compress/delta_binary_key_codec.h"
#include "ml/gradient.h"

namespace {

using namespace sketchml;
using bench::Banner;
using bench::Rule;

constexpr int kEpochs = 3;

const char* kStages[] = {"adam-double", "adam+key", "adam+key+quan",
                         "sketchml"};
const char* kStageLabels[] = {"Adam", "Adam+Key", "Adam+Key+Quan",
                              "Adam+Key+Quan+MinMax"};

}  // namespace

int main() {
  Banner("Component efficiency (KDD10-like, 10 workers, 1 Gbps)",
         "Figure 8(a-d)");

  // ---- 8(a): run time per epoch, per model, per component stage. ----
  std::printf("\n[Fig 8(a)] simulated run time per epoch (seconds)\n");
  Rule();
  std::printf("%-22s %10s %10s %10s\n", "method", "LR", "SVM", "Linear");
  Rule();
  std::vector<std::vector<dist::EpochStats>> lr_stats;  // Reused in 8(b-c).
  for (int s = 0; s < 4; ++s) {
    std::printf("%-22s", kStageLabels[s]);
    for (const char* model : {"lr", "svm", "linear"}) {
      auto workload = bench::MakeWorkload("kdd10", model);
      auto config = bench::DefaultTrainerConfig();
      config.evaluate_test_loss = false;
      auto stats = bench::Train(workload, kStages[s], bench::Cluster1(10),
                                config, kEpochs);
      std::printf(" %10.1f", bench::MeanEpochSeconds(stats));
      if (std::string(model) == "lr") lr_stats.push_back(stats);
    }
    std::printf("\n");
  }
  Rule();
  std::printf("paper (seconds): Adam 243/227/261, +Key 103/159/216,\n"
              "                 +Quan 75/91/49, +MinMax 43/35/39\n");

  // ---- 8(b): message size and compression rate (LR). ----
  std::printf("\n[Fig 8(b)] average gradient message size (LR)\n");
  Rule();
  std::printf("%-22s %14s %12s\n", "method", "message", "rate");
  Rule();
  const double raw_msg = dist::Aggregate(lr_stats[0]).AvgMessageBytes();
  for (int s = 0; s < 4; ++s) {
    const double msg = dist::Aggregate(lr_stats[s]).AvgMessageBytes();
    std::printf("%-22s %11.2f KB %11.2fx\n", kStageLabels[s], msg / 1e3,
                raw_msg / msg);
  }
  Rule();
  std::printf("paper: 35.58 MB -> 27.39 -> 6.63 -> 4.92 MB "
              "(rates 1.0 / 1.30 / 5.36 / 7.24)\n");

  // ---- 8(c): CPU overhead. ----
  std::printf("\n[Fig 8(c)] CPU usage during the epoch (LR)\n");
  Rule();
  std::printf("%-22s %10s %10s\n", "method", "avg cpu%", "codec-share%");
  Rule();
  for (int s = 0; s < 4; ++s) {
    const auto total = dist::Aggregate(lr_stats[s]);
    const double cpu_secs = total.compute_seconds + total.encode_seconds +
                            total.decode_seconds + total.update_seconds;
    const double codec_share =
        cpu_secs > 0
            ? (total.encode_seconds + total.decode_seconds) / cpu_secs * 100
            : 0.0;
    std::printf("%-22s %10.1f %10.1f\n", kStageLabels[s],
                total.AvgCpuPercent(), codec_share);
  }
  Rule();
  std::printf("paper: average CPU rises 22 -> 35 -> 43 -> 47%% (less idle\n"
              "waiting on the network); peak roughly constant.\n");

  // ---- 8(d): batch ratio vs sparsity / run time / bytes per key. ----
  std::printf("\n[Fig 8(d)] impact of batch ratio (SketchML, LR)\n");
  Rule();
  std::printf("%-12s %14s %14s %14s\n", "batch ratio", "grad sparsity",
              "sec/epoch", "bytes/key");
  Rule();
  for (double ratio : {0.1, 0.03, 0.01}) {
    auto workload = bench::MakeWorkload("kdd10", "lr");
    auto config = bench::DefaultTrainerConfig();
    config.batch_ratio = ratio;
    config.evaluate_test_loss = false;
    auto stats =
        bench::Train(workload, "sketchml", bench::Cluster1(10), config, 2);
    const auto total = dist::Aggregate(stats);
    const double sparsity =
        total.avg_gradient_nnz / static_cast<double>(workload.train.dim());

    // Bytes per key as delta-binary sees it: measure directly on one
    // epoch's gradients via the key codec (flags included).
    ml::DenseVector w(workload.train.dim(), 0.0);
    const size_t batch = std::max<size_t>(
        1, static_cast<size_t>(workload.train.size() * ratio));
    auto grad = ml::ComputeBatchGradient(*workload.loss, w, workload.train,
                                         0, batch, 0.01);
    const double bytes_per_key =
        static_cast<double>(
            compress::DeltaBinaryKeyCodec::EncodedSize(common::Keys(grad))) /
        static_cast<double>(grad.size());

    std::printf("%-12.2f %13.3f%% %14.1f %14.2f\n", ratio, sparsity * 100,
                bench::MeanEpochSeconds(stats), bytes_per_key);
  }
  Rule();
  std::printf("paper: sparsity 10%% -> 1.77%% as ratio drops 0.1 -> 0.01;\n"
              "run time rises 58 -> 105 s (more synchronization);\n"
              "bytes/key ~1.25-1.27 over the sparsity range.\n");
  return 0;
}
