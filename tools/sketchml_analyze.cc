// sketchml_analyze: whole-project semantic analysis for SketchML.
//
// Where tools/sketchml_lint checks per-line style rules one file at a
// time, this tool builds a project model (src/analysis/project_model.h)
// over src/ + tools/ and runs four cross-TU passes:
//
//   layering   include graph respects the layer DAG; no include cycles
//   wire       Serialize/SerializeTail/SaveState methods have matching
//              readers issuing the same Write*/Read* field sequence
//   names      metric/trace literals consumed in reports, the trace
//              analyzer, and docs have matching registration sites
//   replay     no wall-clock / ambient randomness reachable from the
//              replay-critical entry points (trainer epoch loop, codec
//              Encode/Decode, fault and membership oracles)
//
// Usage: sketchml_analyze [--root=DIR] [--pass=ID] [--baseline=FILE]
//                         [--replay-entry=SPEC]... [--docs=DIR]
//                         [--list-passes] [--quiet]
//
// Intentional findings are recorded in the baseline file (default
// <root>/tools/analysis_baseline.txt when present): one
// `<pass> <key> <justification>` line each. The baseline key for every
// finding is printed with the diagnostic. Stale entries are findings.
//
// Exit codes: 0 clean, 1 findings, 2 usage/config error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "analysis/project_model.h"

namespace {

using sketchml::analysis::AnalyzeOptions;
using sketchml::analysis::ApplyBaseline;
using sketchml::analysis::Baseline;
using sketchml::analysis::Finding;
using sketchml::analysis::ParseBaseline;
using sketchml::analysis::ProjectModel;

const char* const kPassIds[] = {"layering", "wire", "names", "replay"};

int Usage() {
  std::fprintf(
      stderr,
      "usage: sketchml_analyze [--root=DIR] [--pass=ID] [--baseline=FILE]\n"
      "                        [--replay-entry=SPEC]... [--docs=DIR]\n"
      "                        [--list-passes] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string only_pass;
  std::string baseline_path;
  bool baseline_explicit = false;
  bool docs_explicit = false;
  bool quiet = false;
  AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg.rfind("--pass=", 0) == 0) {
      only_pass = value("--pass=");
      bool known = false;
      for (const char* id : kPassIds) known = known || only_pass == id;
      if (!known) {
        std::fprintf(stderr, "sketchml_analyze: unknown pass '%s'\n",
                     only_pass.c_str());
        return 2;
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
      baseline_explicit = true;
    } else if (arg.rfind("--replay-entry=", 0) == 0) {
      options.replay_entries.push_back(value("--replay-entry="));
    } else if (arg.rfind("--docs=", 0) == 0) {
      options.docs_dir = value("--docs=");
      docs_explicit = true;
    } else if (arg == "--list-passes") {
      for (const char* id : kPassIds) std::printf("%s\n", id);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "sketchml_analyze: root '%s' is not a directory\n",
                 root.c_str());
    return 2;
  }
  if (!baseline_explicit) {
    const fs::path candidate = fs::path(root) / "tools/analysis_baseline.txt";
    if (fs::exists(candidate, ec)) baseline_path = candidate.string();
  }
  if (!docs_explicit) {
    const fs::path candidate = fs::path(root) / "docs";
    if (fs::is_directory(candidate, ec)) {
      options.docs_dir = candidate.string();
    }
  }

  Baseline baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "sketchml_analyze: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!ParseBaseline(buf.str(), &baseline, &error)) {
      std::fprintf(stderr, "sketchml_analyze: %s\n", error.c_str());
      return 2;
    }
  }

  ProjectModel model;
  std::string error;
  if (!sketchml::analysis::LoadProjectTree(root, {"src", "tools"}, &model,
                                           &error)) {
    std::fprintf(stderr, "sketchml_analyze: %s\n", error.c_str());
    return 2;
  }
  if (model.files.empty()) {
    std::fprintf(stderr, "sketchml_analyze: no sources under '%s'\n",
                 root.c_str());
    return 2;
  }

  std::vector<Finding> findings;
  std::vector<std::string> passes_run;
  const auto want = [&](const char* id) {
    return only_pass.empty() || only_pass == id;
  };
  if (want("layering")) {
    passes_run.push_back("layering");
    for (Finding& f : sketchml::analysis::RunLayeringPass(model)) {
      findings.push_back(std::move(f));
    }
  }
  if (want("wire")) {
    passes_run.push_back("wire");
    for (Finding& f : sketchml::analysis::RunWirePass(model)) {
      findings.push_back(std::move(f));
    }
  }
  if (want("names")) {
    passes_run.push_back("names");
    for (Finding& f : sketchml::analysis::RunNamesPass(model, options)) {
      findings.push_back(std::move(f));
    }
  }
  if (want("replay")) {
    passes_run.push_back("replay");
    for (Finding& f : sketchml::analysis::RunReplayPass(model, options)) {
      findings.push_back(std::move(f));
    }
  }

  findings = ApplyBaseline(std::move(findings), baseline, passes_run);
  for (const Finding& f : findings) {
    const std::string where =
        f.file.empty() ? "(project)"
                       : f.file + ":" + std::to_string(f.line);
    std::printf("%s: [%s] %s (baseline key: %s)\n", where.c_str(),
                f.pass.c_str(), f.message.c_str(), f.key.c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "sketchml_analyze: %zu file(s), %zu finding(s)\n",
                 model.files.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
