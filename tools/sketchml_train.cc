// Command-line training driver: runs the distributed-training simulator
// on a synthetic preset or a LIBSVM file with any registered codec.
//
// Examples:
//   sketchml_train --dataset=kdd12 --model=lr --codec=sketchml --epochs=5
//   sketchml_train --dataset=path/to/data.libsvm --codec=adam-double
//       --workers=10 --servers=4 --network=congested --epochs=3
//   sketchml_train --list-codecs

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/metrics_registry.h"
#include "common/obs_flags.h"
#include "common/simd.h"
#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/synthetic.h"

namespace {

using namespace sketchml;

constexpr char kUsage[] = R"(sketchml_train [flags]

  --dataset=NAME|PATH   kdd10 | kdd12 | ctr | synthetic | a .libsvm file
                        (default kdd10)
  --model=NAME          lr | svm | linear (default lr)
  --codec=NAME          any registered codec (default sketchml);
                        --list-codecs prints them
  --epochs=N            epochs to run (default 3)
  --workers=N           simulated executors (default 10)
  --servers=N           parameter-server shards (default 1)
  --network=NAME        lab | congested | wan (default lab)
  --net-scale=X         divide bandwidth by X (default 840, matching the
                        synthetic presets' data scale; use 1 for real data)
  --batch-ratio=X       mini-batch fraction (default 0.1)
  --lr=X                learning rate (default 0.05)
  --adam-eps=X          Adam epsilon (default 0.01)
  --seed=N              dataset/codec seed (default 1)
  --threads=N           execution threads for the simulated workers
                        (default 0 = one per hardware core; results are
                        bit-identical at any thread count)
  --crc                 wrap the codec in a CRC-32 frame
  --simd=LEVEL          auto | off | avx2 — kernel dispatch level for the
                        codec hot loops (default auto = best supported;
                        also settable via SKETCHML_SIMD). Output bytes and
                        metrics are bit-identical at every level
  --fault-seed=N        fault-injection seed (default 1); a fixed seed
                        replays the identical fault sequence
  --fault-drop=P        P(gather message attempt lost in transit)
  --fault-corrupt=P     P(attempt arrives corrupted; CRC framing detects
                        it and the sender retries)
  --fault-straggle=P    P(worker straggles for a batch)
  --fault-straggle-factor=X  straggler delay multiplier (default 4)
  --fault-crash=P       P(worker crashes at a batch)
  --fault-crash-batches=K    batches a crashed worker stays down (def. 3)
  --fault-stall=P       P(server shard stalls during a batch's gather)
  --fault-stall-seconds=S    modeled seconds per stall (default 0.05)
  --fault-retries=N     retransmit budget per message (default 3)
  --fault-backoff=S     base retry backoff, doubles per attempt (def 1e-3)
  --min-quorum=K        min surviving workers per batch; fewer aborts the
                        run with "unavailable" (default 1)
  --membership-seed=N   membership-decision seed (default 1); a fixed seed
                        replays the identical churn schedule
  --membership-join=P   P(a standby worker joins, per batch boundary)
  --membership-leave=P  P(an active worker scales down; may rejoin later)
  --membership-depart=P P(an active worker leaves permanently)
  --membership-max-workers=K  fleet ceiling / worker-id universe
                        (default 0 = --workers)
  --membership-min-workers=K  scale-down floor (default 1)
  --membership-checkpoint-every=N  seal a checkpoint every N epochs
                        (default 0 = off); a below-quorum epoch then rolls
                        back to the last checkpoint and retries
  --membership-max-rollbacks=N  rollback-and-retry budget per epoch
                        (default 2)
  --obs=MODE            auto | on | off (default auto: record metrics and
                        traces iff an output flag below is given; off
                        never perturbs results — losses and bytes are
                        bit-identical either way)
  --trace-out=PATH      write a Chrome trace_event JSON of every trainer
                        phase, codec call, and modeled network transfer
                        (open in chrome://tracing or ui.perfetto.dev)
  --metrics-out=PATH    write final counters/histograms as JSON lines
  --metrics-format=FMT  jsonl (default) or prom — Prometheus text
                        exposition for the --metrics-out dump (counters,
                        gauges, histograms as cumulative buckets, latency
                        sketches as quantile summaries)
  --series-out=PATH     stream a metrics time-series (JSONL): a run
                        header with every flag + git sha, then one sample
                        per epoch boundary (analyze with sketchml_report)
  --sample-interval=S   also sample every S seconds of wall time while
                        training (default 0 = epoch boundaries only)
  --trace-categories=CSV  record only the listed span categories, e.g.
                        "trainer,network" (default: all; the allowlist is
                        documented in docs/observability.md)
  --trace-sample-every=N  record the per-batch causal tree only for every
                        Nth global batch (default 1 = every batch; epoch
                        and driver phase spans are always recorded)
)";

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(), kUsage);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = common::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const common::FlagParser& flags = *parsed;

  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (flags.GetBool("list-codecs", false)) {
    for (const auto& name : core::KnownCodecNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const std::string dataset_name = flags.GetString("dataset", "kdd10");
  const std::string model = flags.GetString("model", "lr");
  const std::string codec_name = flags.GetString("codec", "sketchml");
  auto epochs = flags.GetInt("epochs", 3);
  auto workers = flags.GetInt("workers", 10);
  auto servers = flags.GetInt("servers", 1);
  auto seed = flags.GetInt("seed", 1);
  auto batch_ratio = flags.GetDouble("batch-ratio", 0.1);
  auto lr = flags.GetDouble("lr", 0.05);
  auto adam_eps = flags.GetDouble("adam-eps", 0.01);
  auto net_scale = flags.GetDouble("net-scale", 840.0);
  auto threads = common::GetThreadsFlag(flags);
  if (!threads.ok()) return Fail(threads.status());
  const std::string network_name = flags.GetString("network", "lab");
  const bool use_crc = flags.GetBool("crc", false);
  if (flags.Has("simd")) {
    const auto simd_status =
        common::simd::SetActiveLevelFromString(flags.GetString("simd", ""));
    if (!simd_status.ok()) return Fail(simd_status);
  }
  auto fault_plan = dist::FaultPlanFromFlags(flags);
  if (!fault_plan.ok()) return Fail(fault_plan.status());
  auto membership_plan = dist::MembershipPlanFromFlags(flags);
  if (!membership_plan.ok()) return Fail(membership_plan.status());
  auto obs_config = obs::ConfigureFromFlags(flags);
  if (!obs_config.ok()) return Fail(obs_config.status());
  for (const auto* result :
       {&epochs, &workers, &servers, &seed}) {
    if (!result->ok()) return Fail(result->status());
  }
  for (const auto* result : {&batch_ratio, &lr, &adam_eps, &net_scale}) {
    if (!result->ok()) return Fail(result->status());
  }
  for (const auto& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unused.c_str());
  }

  // Dataset: preset name or LIBSVM path.
  ml::Dataset all;
  if (dataset_name.find(".libsvm") != std::string::npos ||
      dataset_name.find('/') != std::string::npos) {
    auto loaded = ml::ReadLibSvmFile(dataset_name);
    if (!loaded.ok()) return Fail(loaded.status());
    all = std::move(loaded).value();
  } else {
    ml::SyntheticConfig config =
        ml::PresetFor(dataset_name, static_cast<uint64_t>(*seed));
    config.regression = (model == "linear");
    all = ml::GenerateSynthetic(config);
  }
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss(model);
  if (loss == nullptr) {
    return Fail(common::Status::InvalidArgument("unknown model " + model));
  }

  auto codec_result = core::MakeCodec(codec_name);
  if (!codec_result.ok()) return Fail(codec_result.status());
  std::unique_ptr<compress::GradientCodec> codec =
      std::move(codec_result).value();
  if (use_crc) {
    codec = std::make_unique<compress::ChecksummedCodec>(std::move(codec));
  }

  dist::ClusterConfig cluster;
  cluster.num_workers = static_cast<int>(*workers);
  cluster.num_servers = static_cast<int>(*servers);
  dist::NetworkModel base = dist::NetworkModel::Lab1Gbps();
  if (network_name == "congested") {
    base = dist::NetworkModel::Congested10Gbps();
  } else if (network_name == "wan") {
    base = dist::NetworkModel::Wan();
  } else if (network_name != "lab") {
    return Fail(
        common::Status::InvalidArgument("unknown network " + network_name));
  }
  cluster.network = dist::NetworkModel::Scaled(base, *net_scale);
  cluster.faults = *fault_plan;
  cluster.membership = *membership_plan;

  dist::TrainerConfig config;
  config.batch_ratio = *batch_ratio;
  config.learning_rate = *lr;
  config.adam_epsilon = *adam_eps;
  config.num_threads = *threads;
  config.trace_sample_every = obs_config->trace_sample_every;

  std::printf("dataset=%s (%zu train / %zu test, D=%llu, ~%.0f nnz) "
              "model=%s codec=%s W=%lld S=%lld threads=%d\n",
              dataset_name.c_str(), train.size(), test.size(),
              static_cast<unsigned long long>(train.dim()), train.AvgNnz(),
              model.c_str(), codec->Name().c_str(),
              static_cast<long long>(*workers),
              static_cast<long long>(*servers), *threads);

  dist::DistributedTrainer trainer(&train, &test, loss.get(),
                                   std::move(codec), cluster, config);

  // Time-series sampler: the run header records every resolved flag so a
  // series file reproduces its run.
  obs::RunMetadata metadata;
  metadata.Add("dataset", dataset_name);
  metadata.Add("model", model);
  metadata.Add("codec", codec_name);
  metadata.Add("epochs", static_cast<long long>(*epochs));
  metadata.Add("workers", static_cast<long long>(*workers));
  metadata.Add("servers", static_cast<long long>(*servers));
  metadata.Add("network", network_name);
  metadata.Add("net_scale", *net_scale);
  metadata.Add("batch_ratio", *batch_ratio);
  metadata.Add("lr", *lr);
  metadata.Add("adam_eps", *adam_eps);
  metadata.Add("seed", static_cast<long long>(*seed));
  metadata.Add("threads", static_cast<long long>(trainer.num_threads()));
  metadata.Add("crc", use_crc ? "1" : "0");
  // Active SIMD dispatch level and obs flag set: sketchml_report refuses
  // an A/B diff between mismatched dispatch levels unless overridden.
  metadata.Add("simd", common::simd::LevelName(common::simd::ActiveLevel()));
  metadata.Add("obs", obs_config->FlagSet());
  if (fault_plan->Active()) {
    metadata.Add("fault_seed", static_cast<long long>(fault_plan->seed));
    metadata.Add("fault_drop", fault_plan->drop_prob);
    metadata.Add("fault_corrupt", fault_plan->corrupt_prob);
    metadata.Add("fault_straggle", fault_plan->straggle_prob);
    metadata.Add("fault_crash", fault_plan->crash_prob);
    metadata.Add("fault_stall", fault_plan->stall_prob);
    metadata.Add("fault_retries",
                 static_cast<long long>(fault_plan->max_retries));
    metadata.Add("min_quorum", static_cast<long long>(fault_plan->min_quorum));
  }
  if (membership_plan->Active()) {
    metadata.Add("membership_seed",
                 static_cast<long long>(membership_plan->seed));
    metadata.Add("membership_join", membership_plan->join_prob);
    metadata.Add("membership_leave", membership_plan->leave_prob);
    metadata.Add("membership_depart", membership_plan->depart_prob);
    metadata.Add("membership_max_workers",
                 static_cast<long long>(membership_plan->max_workers));
    metadata.Add("membership_min_workers",
                 static_cast<long long>(membership_plan->min_workers));
  }
  if (membership_plan->CheckpointsEnabled()) {
    metadata.Add("membership_checkpoint_every",
                 static_cast<long long>(membership_plan->checkpoint_every));
    metadata.Add("membership_max_rollbacks",
                 static_cast<long long>(membership_plan->max_rollbacks));
  }
  auto sampler = obs::StartSamplerFromConfig(*obs_config,
                                             std::move(metadata));
  if (!sampler.ok()) return Fail(sampler.status());

  std::printf("%6s %10s %12s %12s %10s %10s\n", "epoch", "sim sec",
              "up MB", "msg KB", "train", "test");
  std::vector<dist::EpochStats> all_stats;
  for (int e = 0; e < *epochs; ++e) {
    auto stats = trainer.RunEpoch();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("%6d %10.2f %12.2f %12.1f %10.4f %10.4f\n", stats->epoch,
                stats->TotalSeconds(), stats->bytes_up / 1e6,
                stats->AvgMessageBytes() / 1e3, stats->train_loss,
                stats->test_loss);
    all_stats.push_back(*stats);
    if (*sampler != nullptr) (*sampler)->SampleNow("epoch");
  }

  if (fault_plan->Active()) {
    // One summary line for the whole run; scripts/run_fault_matrix.sh
    // greps these fields, so keep the format stable.
    const dist::EpochStats total = dist::Aggregate(all_stats);
    std::printf("faults: injected=%llu retries=%llu retransmit_bytes=%llu "
                "lost=%llu degraded_batches=%llu\n",
                static_cast<unsigned long long>(total.injected_faults),
                static_cast<unsigned long long>(total.retries),
                static_cast<unsigned long long>(total.retransmit_bytes),
                static_cast<unsigned long long>(total.lost_messages),
                static_cast<unsigned long long>(total.degraded_batches));
  }

  if (membership_plan->Active() || membership_plan->CheckpointsEnabled()) {
    // One summary line for the whole run; scripts/run_churn_matrix.sh
    // greps these fields, so keep the format stable.
    const dist::EpochStats total = dist::Aggregate(all_stats);
    std::printf("membership: joins=%llu leaves=%llu departs=%llu "
                "handoff_bytes=%llu sync_bytes=%llu reconfigs=%llu "
                "rollbacks=%llu active_workers=%d\n",
                static_cast<unsigned long long>(total.joins),
                static_cast<unsigned long long>(total.leaves),
                static_cast<unsigned long long>(total.departs),
                static_cast<unsigned long long>(total.handoff_bytes),
                static_cast<unsigned long long>(total.sync_bytes),
                static_cast<unsigned long long>(total.reconfigurations),
                static_cast<unsigned long long>(total.rollbacks),
                trainer.active_workers());
  }

  if (obs_config->metrics) {
    const std::string latency = dist::LatencyQuantileSummary(
        obs::MetricsRegistry::Global().Snapshot());
    if (!latency.empty()) {
      std::printf("latency quantiles:\n%s", latency.c_str());
    }
  }

  if (*sampler != nullptr) {
    const common::Status stop_status = (*sampler)->Stop();
    if (!stop_status.ok()) return Fail(stop_status);
  }
  const common::Status obs_status = obs::WriteObsOutputs(*obs_config);
  if (!obs_status.ok()) return Fail(obs_status);
  if (!obs_config->trace_out.empty()) {
    std::printf("trace written to %s\n", obs_config->trace_out.c_str());
  }
  if (!obs_config->metrics_out.empty()) {
    std::printf("metrics written to %s\n", obs_config->metrics_out.c_str());
  }
  if (!obs_config->series_out.empty()) {
    std::printf("series written to %s\n", obs_config->series_out.c_str());
  }
  return 0;
}
