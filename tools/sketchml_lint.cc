// sketchml_lint — the repo's own correctness linter.
//
// A standalone analyzer (no libclang dependency) over the shared
// comment/literal-stripping tokenizer in src/analysis/stripped_source.h
// (the same model the whole-project semantic analyzer sketchml_analyze
// builds on, so the two tools cannot drift). It enforces per-file,
// per-line rules that generic tooling cannot know:
//
//   sketchml-discarded-status      no bare-statement or (void)-cast calls
//                                  to known Status/Result-returning APIs
//   sketchml-banned-random         no std::rand/srand/random_device/time()
//                                  seeding outside common/random
//   sketchml-wallclock             no raw clock reads outside the timing
//                                  infrastructure (stopwatch/trace)
//   sketchml-stdout                no std::cout / printf / puts in src/
//                                  libraries (logging or snprintf only)
//   sketchml-include-hygiene       a .cc includes its own header first; no
//                                  <bits/...> internal headers anywhere
//   sketchml-naked-new             no naked new/delete in src/ (containers
//                                  and smart pointers own memory)
//   sketchml-raw-simd              vector intrinsics only inside the
//                                  src/common/simd* dispatch seam
//   sketchml-trace-category        TraceSpan/EmitSpan categories are
//                                  string literals from the allowlist
//   sketchml-nolint-justification  every suppression marker names the
//                                  rule(s) it silences and says why
//
// Escape hatch: `// NOLINT(sketchml-<rule>): <why>` on the offending line
// or `// NOLINTNEXTLINE(sketchml-<rule>): <why>` on the line above. The
// justification audit itself cannot be suppressed; the rule catalog
// lives in docs/static_analysis.md.
//
// Usage:
//   sketchml_lint [--rule=<id>] [--list-rules] [--quiet] <paths...>
// Directories are scanned recursively for .h/.cc files (paths containing
// "lint_fixtures" or "analysis_fixtures" are skipped unless named
// explicitly, so the golden violation fixtures in tests/ never fail the
// tree-wide gate).
// Exit code: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/stripped_source.h"

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string rationale;
};

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> rules = {
      {"sketchml-discarded-status",
       "a dropped Status/Result silently swallows decode/validate failures; "
       "handle it, propagate it, or justify the discard next to a NOLINT"},
      {"sketchml-banned-random",
       "codec/sketch/dist paths must draw randomness from common::Rng seed "
       "lanes so runs replay bit-identically; std::rand/random_device/time "
       "seeding breaks determinism"},
      {"sketchml-wallclock",
       "raw clock reads outside common/stopwatch and common/trace make "
       "results depend on wall time; route timing through Stopwatch or the "
       "obs layer"},
      {"sketchml-stdout",
       "library code must not write to stdout; use SKETCHML_LOG or return "
       "data to the caller (tools/tests/bench may print)"},
      {"sketchml-include-hygiene",
       "a .cc includes its own header first (proves the header is "
       "self-contained); <bits/...> headers are libstdc++ internals"},
      {"sketchml-naked-new",
       "hot paths use containers/smart pointers; naked new/delete risks "
       "leaks on early Status returns (intentional leaked singletons get a "
       "NOLINT with justification)"},
      {"sketchml-raw-simd",
       "raw vector intrinsics outside src/common/simd* bypass the runtime "
       "dispatch seam: they crash older CPUs the scalar path supports and "
       "dodge the scalar/SIMD differential tests; add a kernel to the seam "
       "instead"},
      {"sketchml-trace-category",
       "span categories must be string literals from the allowlist in "
       "docs/observability.md: TraceEvent stores the category by pointer "
       "(a computed string dangles) and both --trace-categories and the "
       "critical-path analyzer compare exact names, so a novel category "
       "silently vanishes from every report"},
      {"sketchml-nolint-justification",
       "every suppression marker must name the rule(s) it silences and "
       "carry a ': <why>' justification; a bare marker suppresses every "
       "rule with no audit trail (this rule itself cannot be suppressed)"},
  };
  return rules;
}

bool IsRuleId(const std::string& id) {
  const auto& rules = RuleCatalog();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

// ---------------------------------------------------------------------------
// Source model: the shared tokenizer from src/analysis. StrippedSource
// blanks comments and string/char literal *contents* (preserving line
// structure and column positions) so rules never match inside them, and
// keeps the raw comment text per line for NOLINT handling.
// ---------------------------------------------------------------------------

using SourceFile = sketchml::analysis::StrippedSource;
using sketchml::analysis::ContainsCall;
using sketchml::analysis::ContainsToken;
using sketchml::analysis::ContainsTokenPrefix;
using sketchml::analysis::IsIdentChar;
using sketchml::analysis::StripToCode;
using sketchml::analysis::Suppressed;

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

using RuleFn = void (*)(const SourceFile&, std::vector<Violation>*);

void Report(const SourceFile& file, size_t line_idx, const std::string& rule,
            std::string message, std::vector<Violation>* out) {
  if (Suppressed(file, line_idx, rule)) return;
  out->push_back({file.path, line_idx + 1, rule, std::move(message)});
}

bool InSrc(const SourceFile& f) { return StartsWith(f.rel, "src/"); }

bool PathIsOneOf(const SourceFile& f,
                 std::initializer_list<std::string_view> stems) {
  for (std::string_view stem : stems) {
    if (f.rel.find(stem) != std::string::npos) return true;
  }
  return false;
}

// sketchml-banned-random: nondeterminism sources outside common/random.
void CheckBannedRandom(const SourceFile& file, std::vector<Violation>* out) {
  if (PathIsOneOf(file, {"common/random."})) return;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (ContainsToken(line, "random_device")) {
      Report(file, i, "sketchml-banned-random",
             "std::random_device is nondeterministic; derive seeds from "
             "common::Rng / LaneSeed",
             out);
    }
    if (ContainsCall(line, "rand") || ContainsCall(line, "srand")) {
      Report(file, i, "sketchml-banned-random",
             "C PRNG breaks seed-lane determinism; use common::Rng", out);
    }
    if (ContainsCall(line, "time")) {
      Report(file, i, "sketchml-banned-random",
             "time() seeding makes runs unreplayable; use a fixed or "
             "flag-provided seed",
             out);
    }
  }
}

// sketchml-wallclock: clock reads outside the timing infrastructure.
void CheckWallclock(const SourceFile& file, std::vector<Violation>* out) {
  // Stopwatch and the trace ring are *the* sanctioned clock owners.
  if (PathIsOneOf(file, {"common/stopwatch.", "common/trace."})) return;
  static const char* kClocks[] = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime", "gmtime",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const char* clock : kClocks) {
      if (ContainsToken(line, clock)) {
        Report(file, i, "sketchml-wallclock",
               std::string(clock) +
                   " read outside stopwatch/trace; route timing through "
                   "common::Stopwatch or obs::NowNs",
               out);
      }
    }
  }
}

// sketchml-stdout: library code must not print to stdout.
void CheckStdout(const SourceFile& file, std::vector<Violation>* out) {
  if (!InSrc(file)) return;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (ContainsToken(line, "cout")) {
      Report(file, i, "sketchml-stdout",
             "std::cout in library code; use SKETCHML_LOG or return data",
             out);
    }
    if (ContainsCall(line, "printf") || ContainsCall(line, "puts")) {
      Report(file, i, "sketchml-stdout",
             "printf/puts writes to stdout from library code; use "
             "SKETCHML_LOG (std::snprintf into a buffer is fine)",
             out);
    }
  }
}

// sketchml-include-hygiene: own header first, no <bits/...>.
void CheckIncludeHygiene(const SourceFile& file, std::vector<Violation>* out) {
  std::string first_include;
  size_t first_include_line = 0;
  for (size_t i = 0; i < file.code.size(); ++i) {
    // Detect the directive on the stripped line (so commented-out
    // includes don't count) but match header names on the raw line — the
    // stripper blanks quoted include paths like any string literal.
    if (file.code[i].find("#include") == std::string::npos) continue;
    const std::string& line = file.raw[i];
    if (line.find("<bits/") != std::string::npos) {
      Report(file, i, "sketchml-include-hygiene",
             "<bits/...> is a libstdc++ internal header; include the "
             "standard header instead",
             out);
    }
    if (first_include.empty()) {
      first_include = line;
      first_include_line = i;
    }
  }
  // Own-header-first applies to library/tool .cc files with a sibling .h.
  if (file.rel.size() > 3 && StartsWith(file.rel, "src/") &&
      file.rel.substr(file.rel.size() - 3) == ".cc" && !first_include.empty()) {
    // src/<dir>/<stem>.cc includes "<dir>/<stem>.h" (project-relative).
    const std::string project_rel =
        file.rel.substr(4, file.rel.size() - 4 - 3);  // "<dir>/<stem>"
    const std::string own_header = "\"" + project_rel + ".h\"";
    bool has_own_header = false;
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (file.code[i].find("#include") != std::string::npos &&
          file.raw[i].find(own_header) != std::string::npos) {
        has_own_header = true;
        break;
      }
    }
    if (has_own_header &&
        first_include.find(own_header) == std::string::npos) {
      Report(file, first_include_line, "sketchml-include-hygiene",
             "a .cc file includes its own header first (found " +
                 first_include.substr(first_include.find("#include")) +
                 " before " + own_header + ")",
             out);
    }
  }
}

// sketchml-naked-new: manual memory management in src/.
void CheckNakedNew(const SourceFile& file, std::vector<Violation>* out) {
  if (!InSrc(file)) return;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (ContainsToken(line, "new")) {
      // make_shared/make_unique lines never contain a naked `new` token;
      // placement new and `new (std::nothrow)` are still flagged.
      Report(file, i, "sketchml-naked-new",
             "naked new in library code; use std::make_unique/make_shared "
             "or a container",
             out);
    }
    if (ContainsToken(line, "delete")) {
      // `= delete` (deleted special members) is not memory management.
      size_t pos = line.find("delete");
      bool deleted_fn = false;
      while (pos != std::string::npos) {
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before > 0 && line[before - 1] == '=') deleted_fn = true;
        pos = line.find("delete", pos + 1);
      }
      if (!deleted_fn) {
        Report(file, i, "sketchml-naked-new",
               "naked delete in library code; let RAII own the lifetime",
               out);
      }
    }
  }
}

// sketchml-raw-simd: vector intrinsics only inside the dispatch seam
// (src/common/simd*), keeping scalar/SIMD parity testable in one place.
void CheckRawSimd(const SourceFile& file, std::vector<Violation>* out) {
  if (PathIsOneOf(file, {"common/simd"})) return;
  static const char* kIntrinHeaders[] = {
      "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
      "pmmintrin.h", "smmintrin.h", "tmmintrin.h", "nmmintrin.h",
      "wmmintrin.h", "avxintrin.h", "avx2intrin.h", "arm_neon.h",
  };
  static const char* kIntrinPrefixes[] = {
      "_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (line.find("#include") != std::string::npos) {
      // Angle-bracket paths survive stripping, but match against the raw
      // line so quoted includes are covered too.
      for (const char* header : kIntrinHeaders) {
        if (file.raw[i].find(header) != std::string::npos) {
          Report(file, i, "sketchml-raw-simd",
                 std::string(header) +
                     " included outside src/common/simd*; add a kernel to "
                     "the dispatch seam instead",
                 out);
          break;
        }
      }
      continue;
    }
    for (const char* prefix : kIntrinPrefixes) {
      if (ContainsTokenPrefix(line, prefix)) {
        Report(file, i, "sketchml-raw-simd",
               std::string(prefix) +
                   "* intrinsic outside src/common/simd*; add a kernel to "
                   "the dispatch seam instead",
               out);
        break;  // One diagnostic per line.
      }
    }
  }
}

// sketchml-trace-category: span categories are literals from the documented
// allowlist. Covers TraceSpan constructions, EmitSpan/EmitSpanWithParent
// calls, and optional<TraceSpan>::emplace through span-named receivers
// (the trainer's conditional spans). common/trace.* declares the API and
// is exempt.
void CheckTraceCategory(const SourceFile& file, std::vector<Violation>* out) {
  if (PathIsOneOf(file, {"common/trace."})) return;
  static const char* kAllowed[] = {"trainer", "codec", "network", "test",
                                   "bench"};
  const auto allowed = [](std::string_view category) {
    for (const char* c : kAllowed) {
      if (category == c) return true;
    }
    return false;
  };

  // Checks the first argument of a span construction whose '(' sits at
  // (line_idx, paren). The argument may start on a following line
  // (clang-format wraps long EmitSpan calls after the open paren); the
  // literal text is read from the raw line because the stripper blanks
  // literal contents while preserving columns.
  const auto check_first_arg = [&](size_t line_idx, size_t paren) {
    size_t li = line_idx;
    size_t pos = paren + 1;
    for (int hop = 0; hop < 3 && li < file.code.size(); ++hop) {
      const std::string& code = file.code[li];
      pos = code.find_first_not_of(' ', pos);
      if (pos == std::string::npos) {
        ++li;
        pos = 0;
        continue;
      }
      if (code[pos] == ')') return;  // Empty argument list: a declaration.
      if (code[pos] != '"') {
        Report(file, li, "sketchml-trace-category",
               "span category is not a string literal; the trace ring "
               "stores the category pointer and filters compare exact "
               "names — pass a literal from the docs/observability.md "
               "allowlist",
               out);
        return;
      }
      // Literal contents are blanked in `code`, so the next '"' closes it.
      const size_t close = code.find('"', pos + 1);
      if (close == std::string::npos || li >= file.raw.size() ||
          close >= file.raw[li].size()) {
        return;  // Malformed or misaligned; nothing safe to check.
      }
      const std::string category =
          file.raw[li].substr(pos + 1, close - pos - 1);
      if (!allowed(category)) {
        Report(file, li, "sketchml-trace-category",
               "span category \"" + category +
                   "\" is not in the documented allowlist (trainer, codec, "
                   "network, test, bench); use an existing category or "
                   "extend docs/observability.md and this rule together",
               out);
      }
      return;
    }
  };

  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (std::string_view token :
         {std::string_view("TraceSpan"), std::string_view("EmitSpan"),
          std::string_view("EmitSpanWithParent")}) {
      size_t pos = 0;
      while ((pos = line.find(token, pos)) != std::string::npos) {
        const size_t end = pos + token.size();
        const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
        const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
        pos = end;
        if (!left_ok || !right_ok) continue;
        size_t after = line.find_first_not_of(' ', end);
        if (after == std::string::npos) continue;
        if (token == "TraceSpan" && IsIdentChar(line[after])) {
          // `TraceSpan name(...)`: a named local; skip the variable name.
          while (after < line.size() && IsIdentChar(line[after])) ++after;
          after = line.find_first_not_of(' ', after);
          if (after == std::string::npos) continue;
        }
        // Anything but '(' here is a type use (optional<TraceSpan>,
        // `const TraceSpan&`, a plain declaration), not a construction.
        if (line[after] != '(') continue;
        check_first_arg(i, after);
      }
    }
    // optional<TraceSpan>::emplace — tie to span-named receivers so
    // unrelated container emplace calls never match.
    size_t epos = 0;
    while ((epos = line.find("emplace", epos)) != std::string::npos) {
      const size_t eend = epos + 7;
      const bool is_call = epos > 0 &&
                           (line[epos - 1] == '.' || line[epos - 1] == '>') &&
                           eend < line.size() && line[eend] == '(';
      epos = eend;
      if (!is_call) continue;
      size_t rcv_end = eend - 7 - (line[eend - 8] == '>' ? 2 : 1);
      size_t rcv_begin = rcv_end;
      while (rcv_begin > 0 && IsIdentChar(line[rcv_begin - 1])) --rcv_begin;
      const std::string_view receiver =
          std::string_view(line).substr(rcv_begin, rcv_end - rcv_begin);
      const bool span_receiver =
          receiver == "span" ||
          (receiver.size() >= 5 &&
           (receiver.substr(receiver.size() - 5) == "_span" ||
            receiver.substr(receiver.size() - 4) == "Span"));
      if (span_receiver) check_first_arg(i, eend);
    }
  }
}

// sketchml-discarded-status: bare-statement calls to APIs known to return
// Status/Result, and (void)-casts silencing [[nodiscard]] without NOLINT.
//
// The compiler enforces the general case via [[nodiscard]] on Status and
// Result; this rule closes the two remaining holes: `(void)` casts added
// without justification, and calls through names whose declarations live
// outside the build (scripts, generated code).
void CheckDiscardedStatus(const SourceFile& file, std::vector<Violation>* out) {
  // Method/function names whose return is a Status/Result in this repo.
  static const char* kStatusCalls[] = {
      "Encode",      "Decode",          "EncodeImpl",    "DecodeImpl",
      "Deserialize", "DeserializeMeans", "UnframeMessage", "Validate",
      "ValidateClusterConfig", "ValidateFaultPlan", "ValidateEncodable",
      "ReadU8",      "ReadU16",  "ReadU32",  "ReadU64",  "ReadI32",
      "ReadI64",     "ReadFloat", "ReadDouble", "ReadUintN", "ReadVarint",
      "ReadRaw",     "RunEpoch", "WriteObsOutputs", "WriteLibSvmFile",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    // Hole 1: `(void)` cast of a status call.
    if (line.find("(void)") != std::string::npos) {
      for (const char* name : kStatusCalls) {
        const size_t void_pos = line.find("(void)");
        const size_t call_pos = line.find(name, void_pos);
        if (call_pos != std::string::npos &&
            ContainsCall(line.substr(void_pos), name)) {
          Report(file, i, "sketchml-discarded-status",
                 std::string("(void)-discarded ") + name +
                     "() hides a Status; justify with NOLINT or handle it",
                 out);
          break;
        }
      }
    }
    // Hole 2: bare statement `obj.Call(...);` or `Call(...);` whose value
    // is unused. Heuristic: the trimmed line starts with the call chain
    // (no assignment/return/guard) and ends the statement on this line or
    // a later one without the value being consumed.
    std::string trimmed = line;
    const size_t start = trimmed.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    trimmed = trimmed.substr(start);
    for (const char* name : kStatusCalls) {
      // Candidate shapes: "Name(", "obj.Name(", "ptr->Name(", "ns::Name(".
      size_t pos = trimmed.find(name);
      if (pos == std::string::npos) continue;
      std::string head = trimmed.substr(0, pos);
      // Head must be only an object path (identifiers, ., ->, ::, *, this).
      const bool head_is_path =
          head.find_first_not_of(
              "abcdefghijklmnopqrstuvwxyz"
              "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:->()*") ==
          std::string::npos;
      if (!head_is_path) continue;
      if (head.find('=') != std::string::npos) continue;
      // `(void)`-cast discards are hole 1's job; don't double-report.
      if (head.find("(void)") != std::string::npos) continue;
      // `Class::Encode(...)` / `Class::Decode(...)` are the static void
      // byte-coders (HuffmanByteCoder etc.), not the Status-returning
      // instance codecs, which are always invoked through an object.
      if (head.size() >= 2 && head.compare(head.size() - 2, 2, "::") == 0 &&
          (std::string_view(name) == "Encode" ||
           std::string_view(name) == "Decode")) {
        continue;
      }
      // The token after the name must open a call.
      size_t after = pos + std::string(name).size();
      if (after >= trimmed.size() || trimmed[after] != '(') continue;
      // Must not itself be consumed: statement ends with ");" and head is
      // not part of return/if/while/macro-wrapped expressions.
      if (StartsWith(trimmed, "return") || StartsWith(trimmed, "if") ||
          StartsWith(trimmed, "while") || StartsWith(trimmed, "for") ||
          StartsWith(trimmed, "switch")) {
        continue;
      }
      // Walk to the matching close paren (possibly multi-line; cap at 8).
      int depth = 0;
      bool terminated_bare = false;
      size_t scan_line = i;
      size_t scan_pos = after;
      for (int hop = 0; hop < 8 && scan_line < file.code.size(); ++hop) {
        const std::string& l = file.code[scan_line];
        for (size_t p = scan_pos; p < l.size(); ++p) {
          if (l[p] == '(') ++depth;
          if (l[p] == ')') {
            --depth;
            if (depth == 0) {
              size_t q = p + 1;
              while (q < l.size() && l[q] == ' ') ++q;
              terminated_bare = q < l.size() && l[q] == ';';
              hop = 8;  // Done scanning.
              break;
            }
          }
        }
        ++scan_line;
        scan_pos = 0;
      }
      if (!terminated_bare) continue;
      // Declarations ("Status Encode(...) ;" in headers) start with a type
      // name before the call name — head would contain a space.
      if (head.find(' ') != std::string::npos) continue;
      Report(file, i, "sketchml-discarded-status",
             std::string("result of ") + name +
                 "() is discarded; assign it, propagate it, or justify "
                 "with NOLINT",
             out);
      break;
    }
  }
}

// sketchml-nolint-justification: every comment-leading suppression marker
// must name the rule(s) it silences and carry a ': <why>' justification,
// e.g. `// NOLINT(sketchml-naked-new): leaked singleton, safe at exit.`
// Suppressed() treats a comment-leading marker with no rule list as
// suppress-everything, so a bare marker is an unbounded, unexplained
// escape — including accidental ones, where a prose comment merely
// *starts* with the word NOLINTNEXTLINE and silently disables every rule
// on the next line. Violations are appended directly rather than through
// Report() so a suppression can never silence its own audit. Markers
// mentioned mid-comment (docs, rule rationales) are prose, not
// suppressions, and are not audited.
void CheckNolintJustification(const SourceFile& file,
                              std::vector<Violation>* out) {
  constexpr const char* kRule = "sketchml-nolint-justification";
  for (size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& comment = file.comments[i];
    const size_t start = comment.find_first_not_of("/* \t");
    if (start == std::string::npos) continue;
    const std::string_view body = std::string_view(comment).substr(start);
    size_t marker_len = 0;
    if (StartsWith(body, "NOLINTNEXTLINE")) {
      marker_len = 14;
    } else if (StartsWith(body, "NOLINT")) {
      marker_len = 6;
    } else {
      continue;
    }
    const std::string marker(body.substr(0, marker_len));
    const std::string_view rest = body.substr(marker_len);
    if (rest.empty() || rest[0] != '(') {
      out->push_back({file.path, i + 1, kRule,
                      "bare " + marker +
                          " suppresses every rule with no audit trail; use " +
                          marker + "(<rule>): <why>"});
      continue;
    }
    const size_t close = rest.find(')');
    if (close == std::string_view::npos ||
        rest.substr(1, close - 1).find_first_not_of(" \t") ==
            std::string_view::npos) {
      out->push_back({file.path, i + 1, kRule,
                      marker + " has an empty or unterminated rule list; "
                              "name the rule(s) it silences"});
      continue;
    }
    const std::string_view after = rest.substr(close + 1);
    const size_t colon = after.find_first_not_of(" \t");
    const bool justified =
        colon != std::string_view::npos && after[colon] == ':' &&
        after.find_first_not_of(" \t", colon + 1) != std::string_view::npos;
    if (!justified) {
      out->push_back({file.path, i + 1, kRule,
                      marker + "(" + std::string(rest.substr(1, close - 1)) +
                          ") lacks a justification; append \": <why>\""});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

const std::map<std::string, RuleFn>& Rules() {
  static const std::map<std::string, RuleFn> rules = {
      {"sketchml-discarded-status", CheckDiscardedStatus},
      {"sketchml-banned-random", CheckBannedRandom},
      {"sketchml-wallclock", CheckWallclock},
      {"sketchml-stdout", CheckStdout},
      {"sketchml-include-hygiene", CheckIncludeHygiene},
      {"sketchml-naked-new", CheckNakedNew},
      {"sketchml-raw-simd", CheckRawSimd},
      {"sketchml-trace-category", CheckTraceCategory},
      {"sketchml-nolint-justification", CheckNolintJustification},
  };
  return rules;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Repo-relative path with forward slashes, for rule scoping.
std::string RepoRelative(const fs::path& p) {
  return sketchml::analysis::RepoRelative(p.generic_string());
}

int LintFile(const fs::path& path, const std::string& only_rule,
             std::vector<Violation>* violations) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "sketchml_lint: cannot read " << path.string() << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const SourceFile file =
      StripToCode(path.string(), RepoRelative(path), buf.str());
  for (const auto& [id, fn] : Rules()) {
    if (!only_rule.empty() && id != only_rule) continue;
    fn(file, violations);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string only_rule;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : RuleCatalog()) {
        std::cout << r.id << "\n    " << r.rationale << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      only_rule = arg.substr(7);
      if (!IsRuleId(only_rule)) {
        std::cerr << "sketchml_lint: unknown rule '" << only_rule
                  << "' (--list-rules)\n";
        return 2;
      }
      continue;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "sketchml_lint: unknown flag " << arg << "\n"
                << "usage: sketchml_lint [--rule=<id>] [--list-rules] "
                   "[--quiet] <files-or-dirs...>\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: sketchml_lint [--rule=<id>] [--list-rules] "
                 "[--quiet] <files-or-dirs...>\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) || !IsSourceFile(it->path())) continue;
        // Golden violation fixtures only lint when named explicitly.
        const std::string generic = it->path().generic_string();
        if (generic.find("lint_fixtures") != std::string::npos ||
            generic.find("analysis_fixtures") != std::string::npos) {
          continue;
        }
        files.push_back(it->path());
      }
    } else if (fs::exists(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "sketchml_lint: no such path " << root.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& f : files) {
    const int rc = LintFile(f, only_rule, &violations);
    if (rc != 0) return rc;
  }

  if (!quiet) {
    for (const Violation& v : violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    std::cout << "sketchml_lint: " << files.size() << " files, "
              << violations.size() << " violation"
              << (violations.size() == 1 ? "" : "s") << "\n";
  }
  return violations.empty() ? 0 : 1;
}
