// Analysis CLI for the observability dumps the other tools write:
//
//   sketchml_report run.series.jsonl
//       per-worker phase breakdown (the paper's Figure 9 view), per-epoch
//       straggler summary, per-codec compression ratio and recovery
//       error, from a --series-out time-series.
//
//   sketchml_report --trace=run.trace.json --metrics=run.metrics.jsonl
//       span totals from a Chrome trace and/or a metrics snapshot table;
//       combinable with a series file.
//
//   sketchml_report --baseline=a.series.jsonl --candidate=b.series.jsonl
//       A/B regression gate: flags every metric whose relative change
//       exceeds --threshold (default 0.25) and exits 1 when any change is
//       a regression (more seconds/bytes/error, or any drift in a
//       deterministic count). --ignore-times skips wall-clock metrics so
//       fixed-seed runs compare deterministically across machines.
//
// Exit codes: 0 ok, 1 regression found, 2 usage or input error.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "dist/report.h"

namespace {

using namespace sketchml;

constexpr char kUsage[] = R"(sketchml_report [flags] [series.jsonl]

  SERIES.JSONL          time-series from sketchml_train --series-out:
                        prints phase totals, per-worker/server breakdown,
                        per-codec compression, per-epoch stragglers
  --trace=PATH          summarize a Chrome trace (*.trace.json)
  --metrics=PATH        print a metrics snapshot (*.metrics.jsonl)
  --baseline=PATH       A/B mode: baseline series file
  --candidate=PATH      A/B mode: candidate series file
  --threshold=X         relative change that flags a metric (default 0.25)
  --ignore-times        exclude wall-clock metrics ("*_seconds", "*_ns")
                        from the A/B comparison; sketch quantiles over
                        *modeled* seconds (name contains "modeled") stay
                        compared — they are deterministic for a fixed seed
  --straggler-mean      use the legacy mean-based per-epoch straggler
                        columns instead of sketch p99 detection
  --allow-simd-mismatch allow an A/B diff between runs recorded at
                        different SIMD dispatch levels (refused by
                        default: kernel timings are not comparable)
)";

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = common::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const common::FlagParser& flags = *parsed;

  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }

  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string candidate_path = flags.GetString("candidate", "");
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  auto threshold = flags.GetDouble("threshold", 0.25);
  if (!threshold.ok()) return Fail(threshold.status());
  const bool ignore_times = flags.GetBool("ignore-times", false);
  const bool straggler_mean = flags.GetBool("straggler-mean", false);
  const bool allow_simd_mismatch =
      flags.GetBool("allow-simd-mismatch", false);
  for (const auto& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unused.c_str());
  }

  if (baseline_path.empty() != candidate_path.empty()) {
    return Fail(common::Status::InvalidArgument(
        "--baseline and --candidate must be given together"));
  }

  const auto& positional = flags.positional();
  if (positional.size() > 1) {
    return Fail(common::Status::InvalidArgument(
        "at most one series file may be given"));
  }

  bool did_anything = false;

  if (positional.size() == 1) {
    auto series = dist::LoadRunSeries(positional[0]);
    if (!series.ok()) return Fail(series.status());
    dist::RenderOptions render_options;
    render_options.straggler_mean = straggler_mean;
    std::printf("%s", dist::RenderRunReport(dist::BuildRunReport(*series),
                                            render_options)
                          .c_str());
    did_anything = true;
  }

  if (!trace_path.empty()) {
    auto summary = dist::LoadTraceSummary(trace_path);
    if (!summary.ok()) return Fail(summary.status());
    if (did_anything) std::printf("\n");
    std::printf("%s", dist::RenderTraceSummary(*summary).c_str());
    did_anything = true;
  }

  if (!metrics_path.empty()) {
    auto text = dist::ReadFileToString(metrics_path);
    if (!text.ok()) return Fail(text.status());
    auto rendered = dist::SummarizeMetricsJsonl(*text);
    if (!rendered.ok()) return Fail(rendered.status());
    if (did_anything) std::printf("\n");
    std::printf("%s", rendered->c_str());
    did_anything = true;
  }

  if (!baseline_path.empty()) {
    auto baseline = dist::LoadRunSeries(baseline_path);
    if (!baseline.ok()) return Fail(baseline.status());
    auto candidate = dist::LoadRunSeries(candidate_path);
    if (!candidate.ok()) return Fail(candidate.status());
    // Runs recorded at different SIMD dispatch levels time different
    // kernels; refuse the comparison unless explicitly overridden (the
    // scalar-vs-dispatch byte-identity gate does so on purpose).
    const std::string base_simd = baseline->MetaOr("simd", "");
    const std::string cand_simd = candidate->MetaOr("simd", "");
    if (!allow_simd_mismatch && !base_simd.empty() && !cand_simd.empty() &&
        base_simd != cand_simd) {
      return Fail(common::Status::InvalidArgument(
          "baseline simd=" + base_simd + " but candidate simd=" +
          cand_simd + "; pass --allow-simd-mismatch to compare anyway"));
    }
    dist::DiffOptions options;
    options.threshold = *threshold;
    options.ignore_times = ignore_times;
    const dist::DiffResult diff = dist::DiffRuns(*baseline, *candidate,
                                                 options);
    if (did_anything) std::printf("\n");
    std::printf("baseline:  %s\ncandidate: %s\n%s", baseline_path.c_str(),
                candidate_path.c_str(),
                dist::RenderDiff(diff, options).c_str());
    return diff.HasRegression() ? 1 : 0;
  }

  if (!did_anything) {
    return Fail(common::Status::InvalidArgument(
        "nothing to do: give a series file, --trace/--metrics, or "
        "--baseline/--candidate"));
  }
  return 0;
}
