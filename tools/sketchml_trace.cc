// Critical-path profiler for causal Chrome traces written by
// sketchml_train --trace-out:
//
//   sketchml_trace run.trace.json
//       reconstructs the per-batch causal trees, walks each epoch's
//       critical path, and prints the Fig-11-style breakdown: wall time
//       attributed to {compute, encode, decode, aggregate, update,
//       other}, modeled network/retry time, straggler attribution
//       (which worker's push chain bounded each batch), and retry
//       amplification.
//
//   sketchml_trace run.trace.json --json=report.json
//       additionally writes the report as JSON with separate
//       "structural" (deterministic for a fixed seed) and "timing"
//       (wall-clock) sections, for golden snapshots and A/B diffing.
//
//   sketchml_trace run.trace.json --diff-golden=golden.json
//       compares the trace's structural section against a golden report
//       field-by-field (exact); timing is ignored. Exits 1 on mismatch.
//
// A trace with dropped events (ring wraparound) would yield a
// misleading breakdown — spans are missing, so trees are incomplete —
// and is refused with exit code 2 unless --allow-dropped is given.
//
// Exit codes: 0 ok, 1 structural diff mismatch or orphan spans,
// 2 usage / input / dropped-events error.

#include <cstdio>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "dist/report.h"
#include "dist/trace_analysis.h"

namespace {

using namespace sketchml;

constexpr char kUsage[] = R"(sketchml_trace TRACE.JSON [flags]

  TRACE.JSON            Chrome trace from sketchml_train --trace-out
  --json=PATH           write the critical-path report as JSON
  --diff-golden=PATH    compare structural fields against a golden
                        report JSON (timing ignored); exit 1 on mismatch
  --allow-dropped       analyze a trace with dropped events anyway
                        (the breakdown may be misleading)
  --quiet               suppress the rendered table
)";

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = common::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const common::FlagParser& flags = *parsed;

  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }

  const std::string json_out = flags.GetString("json", "");
  const std::string golden_path = flags.GetString("diff-golden", "");
  const bool allow_dropped = flags.GetBool("allow-dropped", false);
  const bool quiet = flags.GetBool("quiet", false);
  for (const auto& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unused.c_str());
  }
  if (flags.positional().size() != 1) {
    return Fail(common::Status::InvalidArgument(
        "exactly one trace file must be given"));
  }
  const std::string& trace_path = flags.positional()[0];

  auto trace = dist::LoadChromeTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  if (trace->dropped_events > 0 && !allow_dropped) {
    std::fprintf(stderr,
                 "error: %s dropped %llu trace events to ring wraparound; "
                 "the causal trees are incomplete and the breakdown would "
                 "be misleading.\nRaise the trace ring capacity (or sample "
                 "fewer batches via --trace-sample-every), or pass "
                 "--allow-dropped to analyze anyway.\n",
                 trace_path.c_str(),
                 static_cast<unsigned long long>(trace->dropped_events));
    return 2;
  }

  auto report = dist::AnalyzeTrace(*trace);
  if (!report.ok()) return Fail(report.status());

  if (!quiet) {
    std::printf("%s", dist::RenderCriticalPathReport(*report).c_str());
  }

  const std::string report_json = dist::CriticalPathReportToJson(*report);
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    out << report_json;
    if (!out) {
      return Fail(common::Status::IoError("cannot write " + json_out));
    }
  }

  int exit_code = 0;
  if (report->orphan_spans > 0 || report->multi_root_traces > 0) {
    std::fprintf(stderr,
                 "error: causal reconstruction incomplete: %llu orphan "
                 "spans, %llu multi-root traces\n",
                 static_cast<unsigned long long>(report->orphan_spans),
                 static_cast<unsigned long long>(report->multi_root_traces));
    exit_code = 1;
  }

  if (!golden_path.empty()) {
    auto golden_text = dist::ReadFileToString(golden_path);
    if (!golden_text.ok()) return Fail(golden_text.status());
    auto mismatches = dist::DiffStructuralJson(*golden_text, report_json);
    if (!mismatches.ok()) return Fail(mismatches.status());
    if (mismatches->empty()) {
      std::printf("structural diff vs %s: OK (%s)\n", golden_path.c_str(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "structural diff vs %s: %zu mismatch(es)\n",
                   golden_path.c_str(), mismatches->size());
      for (const std::string& mismatch : *mismatches) {
        std::fprintf(stderr, "  %s\n", mismatch.c_str());
      }
      exit_code = 1;
    }
  }
  return exit_code;
}
